"""One processor package: cores + uncore + RAPL + power integration.

``integrate(t0, t1, ...)`` advances all counters and energy accumulators
in closed form over a segment during which every frequency, c-state and
workload phase is constant (the engine guarantees this). This is where
the frequency, bandwidth, IPC and power models meet.

Steady-state fast path: most consecutive segments share the exact same
operating point, so the per-second rates are computed once per *epoch*
(a socket-local dirty counter bumped by every mutation that can change
rates — frequency grants, phase swaps, c-state transitions, AVX-license
changes, uncore frequency/halt; see :mod:`repro.engine.epoch`) and the
per-core accumulation is a single vectorized multiply-add into the
structure-of-arrays counter matrix. This is the difference between
O(events x cores x models) and O(events) for the common case. Setting
``fastpath_enabled = False`` (or ``REPRO_FASTPATH=0``) recomputes every
segment from scratch; both paths are bit-identical by construction and
by test (``tests/test_perf_fastpath.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cstates.states import CState, PackageCState, resolve_package_cstate
from repro.engine.epoch import EpochCell
from repro.engine import fastpath, sanitize
from repro.errors import EpochConsistencyError
from repro.memory.bandwidth import BandwidthDemand, SocketBandwidthModel
from repro.power.fivr import Fivr
from repro.power.model import PowerModel, SocketPowerBreakdown
from repro.power.rapl import (
    MeasuredRaplBackend,
    ModeledRaplBackend,
    RaplBank,
    RaplDomain,
)
from repro.specs.cpu import CpuSpec
from repro.system.core import AVX_REQUEST_THROTTLE, AvxLicense, Core
from repro.system.counters import CSTATE_ROW, FIELD_ROW
from repro.system.uncore import Uncore
from repro.units import NS_PER_S
from repro.workloads.base import WorkloadPhase

# Modeled (pre-Haswell) RAPL underestimates idle power; the offset keeps
# the Fig. 2a idle point off the common trend like the original data.
_MODELED_IDLE_BIAS = 0.85

# Accumulator rows, resolved once (see counters.CORE_COUNTER_FIELDS).
_ROW_TSC = FIELD_ROW["tsc"]
_ROW_APERF = FIELD_ROW["aperf"]
_ROW_MPERF = FIELD_ROW["mperf"]
_ROW_INSTR_CORE = FIELD_ROW["instructions_core"]
_ROW_INSTR_T0 = FIELD_ROW["instructions_thread0"]
_ROW_STALL = FIELD_ROW["stall_cycles"]
_ROW_L3 = FIELD_ROW["l3_bytes"]
_ROW_DRAM = FIELD_ROW["dram_bytes"]
_N_FIELD_ROWS = len(FIELD_ROW)
_C0_RES_ROW = CSTATE_ROW[CState.C0]
_CSTATE_C0 = CState.C0
# The seven rows a uniform lane fills, as one fancy-index vector: one
# broadcast assignment instead of seven row-slice assignments.
_UNIFORM_ROWS = np.array(
    [_ROW_APERF, _ROW_MPERF, _ROW_INSTR_T0, _ROW_INSTR_CORE,
     _ROW_STALL, _ROW_L3, _ROW_DRAM], dtype=np.intp)
# Column-index vectors by core count, shared across every _SegmentRates
# a socket constructs (they are read-only).
_ARANGE_CACHE: dict[int, np.ndarray] = {}


@dataclass(frozen=True)
class _SegmentRates:
    """Precomputed per-second rates for one socket operating point."""

    # (n_fields, n_cores) counter rates per second; one fused
    # multiply-add per segment advances every core counter at once.
    rate_matrix: np.ndarray
    # per-core residency row (current c-state) in the residency matrix
    res_rows: np.ndarray
    uncore_l3_rate: float
    uncore_dram_rate: float
    uclk_rate: float
    breakdown: SocketPowerBreakdown
    bias: float
    # flat indices (row-major) into the residency matrix for the same
    # cells `res_rows` addresses column-wise; a 1-D fancy add on these
    # is cheaper than the 2-D (rows, cols) form and lands on the exact
    # same int64 cells.
    res_flat: np.ndarray = field(init=False)

    # breakdown.package_w and the node's dc sum, precomputed once per
    # operating point instead of re-adding on every segment.
    pkg_w: float = field(init=False)
    dc_w: float = field(init=False)

    def __post_init__(self) -> None:
        n = self.res_rows.shape[0]
        cols = _ARANGE_CACHE.get(n)
        if cols is None:
            cols = _ARANGE_CACHE[n] = np.arange(n, dtype=np.intp)
        object.__setattr__(self, "res_flat", self.res_rows * n + cols)
        object.__setattr__(self, "pkg_w", self.breakdown.package_w)
        object.__setattr__(self, "dc_w",
                           self.breakdown.package_w + self.breakdown.dram_w)


@dataclass
class Socket:
    """Mutable state of one processor package."""

    spec: CpuSpec
    socket_id: int
    cores: list[Core]
    uncore: Uncore
    power_model: PowerModel
    bw_model: SocketBandwidthModel
    rapl: RaplBank
    # true (unbiased, unquantized) energy accumulators
    energy_pkg_j: float = 0.0
    energy_dram_j: float = 0.0
    # last evaluated instantaneous breakdown (for meters/PCU)
    last_breakdown: SocketPowerBreakdown | None = None
    package_cstate: PackageCState = PackageCState.PC0
    # steady-state fast path; None = process default (repro.engine.fastpath)
    fastpath_enabled: bool | None = None
    # epoch-consistency sanitizer; None = process default (engine.sanitize)
    sanitize_enabled: bool | None = None
    _residency_pkg_ns: dict[PackageCState, int] = field(
        default_factory=lambda: {s: 0 for s in PackageCState})

    def __post_init__(self) -> None:
        if self.fastpath_enabled is None:
            self.fastpath_enabled = fastpath.enabled()
        if self.sanitize_enabled is None:
            self.sanitize_enabled = sanitize.enabled()
        self._sanitize_segments = 0
        self.sanitize_checks = 0
        # Socket-local epoch; chained to the node epoch once the node
        # assembles its sockets.
        self.epoch = EpochCell()
        n = len(self.cores)
        # Structure-of-arrays counter storage: adopt every core's
        # counters as column views of one accumulator matrix.
        self._cnt_data = np.zeros((_N_FIELD_ROWS, n), dtype=np.float64)
        self._cnt_res = np.zeros((len(CSTATE_ROW), n), dtype=np.int64)
        self._cnt_scratch = np.empty_like(self._cnt_data)
        self._res_cols = np.arange(n, dtype=np.intp)
        self._cnt_res_flat = self._cnt_res.reshape(-1)   # shared view
        self._last_dc_w = 0.0   # package+dram W of the last segment
        for j, core in enumerate(self.cores):
            core.counters.adopt(self._cnt_data[:, j], self._cnt_res[:, j])
            core._epoch_cell = self.epoch
        self.uncore._epoch_cell = self.epoch
        # Epoch-keyed caches (instance state, never class-level: a
        # class-level cache slot would alias across sockets).
        self._rates: _SegmentRates | None = None
        self._rates_epoch = -1
        self._rates_memo: dict[tuple, _SegmentRates] = {}
        # Residency-row vectors by (row per core) pattern: the patterns
        # cycle with the workload phases while the full memo key churns
        # with every dithered grant, so this inner cache hits even when
        # the outer memo misses. Entries are shared read-only.
        self._res_rows_cache: dict[tuple, np.ndarray] = {}
        # Pre-filled rate-matrix template (TSC always runs at nominal);
        # a memo miss copies it instead of zeroing + refilling the row.
        self._matrix_template = np.zeros_like(self._cnt_data)
        self._matrix_template[_ROW_TSC, :] = self.spec.nominal_hz
        # Staging column for _uniform_rates' one-shot row broadcast.
        self._uniform_scratch = np.empty((len(_UNIFORM_ROWS), 1),
                                         dtype=np.float64)
        self._pkg_sync_key: tuple[int, bool] | None = None
        self._active_cache: list[Core] = []
        self._active_epoch = -1

    # ---- construction ---------------------------------------------------------

    @classmethod
    def build(cls, spec: CpuSpec, socket_id: int, first_core_id: int,
              voltage_offset_v: float, measured_rapl: bool) -> "Socket":
        power_model = PowerModel(spec, voltage_offset_v)
        vf_core = spec.vf_core.with_offset(voltage_offset_v)
        vf_uncore = spec.vf_uncore.with_offset(voltage_offset_v)
        cores = [
            Core(spec=spec, core_id=first_core_id + i, socket_id=socket_id,
                 fivr=Fivr(domain=f"core{first_core_id + i}", vf_curve=vf_core))
            for i in range(spec.n_cores)
        ]
        uncore = Uncore(spec=spec,
                        fivr=Fivr(domain=f"uncore{socket_id}", vf_curve=vf_uncore))
        backend = MeasuredRaplBackend() if measured_rapl else ModeledRaplBackend()
        return cls(spec=spec, socket_id=socket_id, cores=cores, uncore=uncore,
                   power_model=power_model, bw_model=SocketBandwidthModel(spec),
                   rapl=RaplBank(spec=spec, backend=backend))

    # ---- views used by the PCU and instruments ----------------------------------

    def active_cores(self) -> list[Core]:
        """Cores in C0 with an active phase (cached per epoch; treat the
        returned list as read-only)."""
        if self.fastpath_enabled and self._active_epoch == self.epoch.value:
            return self._active_cache
        active = [c for c in self.cores
                  if c.cstate is CState.C0 and (p := c._phase) is not None
                  and p.active]
        self._active_cache = active
        self._active_epoch = self.epoch.value
        return active

    def activity_sum(self) -> float:
        return sum(c.current_phase.power_activity for c in self.active_cores())

    def max_stall_fraction(self) -> float:
        active = self.active_cores()
        if not active:
            return 0.0
        return max(c.current_phase.stall_fraction for c in active)

    def any_avx_active(self) -> bool:
        return any(c.current_phase.uses_avx for c in self.active_cores())

    def fastest_active_request(self) -> float | None | str:
        """The p-state setting of the fastest active core.

        Returns ``None`` for a turbo request, a frequency in Hz otherwise,
        or the sentinel ``"no-active-core"``.
        """
        active = self.active_cores()
        if not active:
            return "no-active-core"
        requests = [c.requested_hz for c in active]
        if any(r is None for r in requests):
            return None
        return max(requests)

    def mean_frequency_hz(self) -> float:
        active = self.active_cores()
        if not active:
            return 0.0
        return sum(c.freq_hz for c in active) / len(active)

    def counter_total(self, name: str) -> float:
        """Sum of one counter over all cores (vectorized over the SoA)."""
        return float(self._cnt_data[FIELD_ROW[name]].sum())

    # ---- bandwidth evaluation ------------------------------------------------------

    def _demands(self) -> list[BandwidthDemand]:
        demands = []
        for core in self.active_cores():
            phase = core.current_phase
            if phase.l3_bytes_per_cycle > 0 or phase.dram_bytes_per_cycle > 0:
                demands.append(BandwidthDemand(
                    core_id=core.core_id,
                    f_core_hz=core.freq_hz,
                    n_threads=max(core.n_threads, 1),
                    l3_bytes_per_cycle=phase.l3_bytes_per_cycle,
                    dram_bytes_per_cycle=phase.dram_bytes_per_cycle,
                ))
        return demands

    def evaluate_power(self) -> SocketPowerBreakdown:
        """Instantaneous power at the current operating point."""
        bw = self.bw_model.solve(self._demands(), self.uncore.freq_hz)
        core_points = [(c.freq_hz, c.current_phase.power_activity)
                       for c in self.active_cores()]
        return self.power_model.socket_power(
            core_points, self.uncore.freq_hz, self.uncore.halted,
            bw.total_dram_gbs)

    # ---- package state ------------------------------------------------------------

    def sync_package_state(self, any_active_in_system: bool) -> PackageCState:
        key = (self.epoch.value, any_active_in_system)
        if self.fastpath_enabled and key == self._pkg_sync_key:
            return self.package_cstate
        state = resolve_package_cstate(
            [c.cstate for c in self.cores], any_active_in_system)
        self.package_cstate = state
        if state.uncore_halted:
            self.uncore.halt()
        else:
            self.uncore.resume()
        # Re-read the epoch: halt()/resume() bump it when they flip the
        # uncore state, and that bump must invalidate the rate cache
        # (not this key — the package state is already up to date).
        self._pkg_sync_key = (self.epoch.value, any_active_in_system)
        return state

    # ---- the integrator ---------------------------------------------------------------

    def _compute_rates_scalar(self) -> "_SegmentRates":
        """Reference (per-core scalar) segment-rate computation.

        Kept as the ground truth the vectorized path is proven against:
        the sanitize-mode epoch check cross-compares both on sampled
        segments, and the vectorization parity tests assert exact
        equality over randomized operating points. Not used on the hot
        path.
        """
        bw = self.bw_model.solve(self._demands(), self.uncore.freq_hz)
        nominal = self.spec.nominal_hz
        rate_matrix = np.zeros_like(self._cnt_data)
        rate_matrix[_ROW_TSC, :] = nominal
        res_rows = np.empty(len(self.cores), dtype=np.intp)
        core_points: list[tuple[float, float]] = []
        bias_num = 0.0
        bias_den = 0.0

        for j, core in enumerate(self.cores):
            res_rows[j] = CSTATE_ROW[core.cstate]
            phase = core.current_phase
            if not (core.is_active and phase is not None and phase.active):
                continue
            f = core.freq_hz
            throttle = self._bw_throttle(core, phase, bw)
            ipc_thread = (phase.ipc_thread(f, self.uncore.freq_hz, throttle)
                          * core.execution_throttle())
            instr_rate = ipc_thread * f
            rate_matrix[_ROW_APERF, j] = f
            rate_matrix[_ROW_MPERF, j] = nominal
            rate_matrix[_ROW_INSTR_T0, j] = instr_rate
            rate_matrix[_ROW_INSTR_CORE, j] = \
                instr_rate * max(core.n_threads, 1)
            rate_matrix[_ROW_STALL, j] = phase.stall_fraction * f
            rate_matrix[_ROW_L3, j] = bw.l3_bytes_per_s.get(core.core_id, 0.0)
            rate_matrix[_ROW_DRAM, j] = \
                bw.dram_bytes_per_s.get(core.core_id, 0.0)
            core_points.append((f, phase.power_activity))
            p_core = self.power_model.core_power_w(f, phase.power_activity)
            bias_num += p_core * phase.rapl_model_bias
            bias_den += p_core

        breakdown = self.power_model.socket_power(
            core_points, self.uncore.freq_hz, self.uncore.halted,
            bw.total_dram_gbs)
        return _SegmentRates(
            rate_matrix=rate_matrix,
            res_rows=res_rows,
            uncore_l3_rate=bw.total_l3_gbs * 1e9,
            uncore_dram_rate=bw.total_dram_gbs * 1e9,
            uclk_rate=0.0 if self.uncore.halted else self.uncore.freq_hz,
            breakdown=breakdown,
            bias=bias_num / bias_den if bias_den > 0 else _MODELED_IDLE_BIAS,
        )

    def _compute_rates(self) -> "_SegmentRates":
        """Segment rates, vectorized across cores over the SoA matrices.

        Evaluates the IPC, bandwidth and power laws with elementwise
        numpy ops whose expression structure mirrors the scalar
        reference exactly — elementwise float64 ops are bit-identical to
        the equivalent scalar arithmetic, and every cross-core reduction
        replicates the reference's left-to-right fold. The result is
        byte-equal to :meth:`_compute_rates_scalar` (enforced by the
        sanitize cross-check and the parity tests), just cheaper when
        many cores are active.
        """
        return self._rates_from_key(self._gather_key())

    def _rates_from_key(self, key: tuple) -> "_SegmentRates":
        """Rate computation driven entirely by a gathered key.

        The memo key is a complete image of every input (uncore point
        plus one lane tuple or c-state per core), so a miss reads the
        key instead of re-walking the cores: one core walk serves both
        the memo probe and the recompute.
        """
        fu = key[0]
        halted = key[1]
        rate_matrix = self._matrix_template.copy()
        c0_row = _C0_RES_ROW
        res_list: list[int] = []
        active: list[tuple[int, tuple]] = []   # (column, lane)
        lane0: tuple | None = None
        uniform = True
        for j, part in enumerate(key[2:]):
            if type(part) is tuple:
                res_list.append(c0_row)
                active.append((j, part))
                if lane0 is None:
                    lane0 = part
                elif uniform and part != lane0:
                    uniform = False
            else:
                res_list.append(CSTATE_ROW[part])
        res_key = tuple(res_list)
        res_rows = self._res_rows_cache.get(res_key)
        if res_rows is None:
            if len(self._res_rows_cache) >= 512:
                self._res_rows_cache.clear()
            res_rows = np.array(res_list, dtype=np.intp)
            self._res_rows_cache[res_key] = res_rows

        if not active:
            breakdown = self.power_model.socket_power(
                [], fu, halted, 0.0)
            return _SegmentRates(
                rate_matrix=rate_matrix, res_rows=res_rows,
                uncore_l3_rate=0.0, uncore_dram_rate=0.0,
                uclk_rate=0.0 if halted else fu,
                breakdown=breakdown, bias=_MODELED_IDLE_BIAS)

        if uniform:
            f0, phase0, nthr0, exec0 = lane0
            return self._uniform_rates(
                rate_matrix, res_rows, [j for j, _ in active],
                (f0, phase0, max(nthr0, 1), exec0), fu, halted)

        nominal = self.spec.nominal_hz
        cols: list[int] = []
        f_l: list[float] = []
        nthr_l: list[int] = []
        exec_l: list[float] = []
        par_l: list[float] = []
        slope_l: list[float] = []
        bwb_l: list[bool] = []
        stall_l: list[float] = []
        act_l: list[float] = []
        bias_l: list[float] = []
        l3pc_l: list[float] = []
        drpc_l: list[float] = []
        for j, lane in active:
            f_hz, phase, nthr, exec_t = lane
            cols.append(j)
            f_l.append(f_hz)
            nthr_l.append(max(nthr, 1))
            exec_l.append(exec_t)
            par_l.append(phase.ipc_parity)
            slope_l.append(phase.ipc_uncore_slope)
            bwb_l.append(phase.bw_bound)
            stall_l.append(phase.stall_fraction)
            act_l.append(phase.power_activity)
            bias_l.append(phase.rapl_model_bias)
            l3pc_l.append(phase.l3_bytes_per_cycle)
            drpc_l.append(phase.dram_bytes_per_cycle)

        col_idx = np.array(cols, dtype=np.intp)
        f = np.array(f_l, dtype=np.float64)
        nthr = np.array(nthr_l, dtype=np.int64)
        l3pc = np.array(l3pc_l, dtype=np.float64)
        drpc = np.array(drpc_l, dtype=np.float64)

        l3_rate, dram_rate, l3_gbs, dram_gbs = self.bw_model.solve_soa(
            f, nthr, l3pc, drpc, fu)

        # Bandwidth throttle (_bw_throttle): achieved/demanded ratio for
        # bw-bound phases, exact 1.0 everywhere else.
        throttle = np.ones_like(f)
        want = (l3pc + drpc) * f
        bound = np.array(bwb_l, dtype=bool) & (want > 0.0)
        if bound.any():
            got = l3_rate[bound] + dram_rate[bound]
            throttle[bound] = np.minimum(1.0, got / want[bound])

        # Per-thread IPC law (WorkloadPhase.ipc_thread). Multiplying the
        # non-bw-bound lanes by their exact 1.0 throttle is a bitwise
        # no-op, matching the reference's conditional multiply.
        par = np.array(par_l, dtype=np.float64)
        ratio = f / max(fu, 1.0)
        ipc = par + np.array(slope_l, dtype=np.float64) * (1.0 - ratio)
        ipc = np.maximum(ipc, 0.05 * par)
        ipc = ipc * throttle
        ipc_thread = ipc * np.array(exec_l, dtype=np.float64)
        instr = ipc_thread * f

        rate_matrix[_ROW_APERF, col_idx] = f
        rate_matrix[_ROW_MPERF, col_idx] = nominal
        rate_matrix[_ROW_INSTR_T0, col_idx] = instr
        rate_matrix[_ROW_INSTR_CORE, col_idx] = instr * nthr
        rate_matrix[_ROW_STALL, col_idx] = \
            np.array(stall_l, dtype=np.float64) * f
        rate_matrix[_ROW_L3, col_idx] = l3_rate
        rate_matrix[_ROW_DRAM, col_idx] = dram_rate

        p_core = self.power_model.core_power_w_array(
            f, np.array(act_l, dtype=np.float64))
        bias_num = sum((p_core * np.array(bias_l, dtype=np.float64)).tolist())
        bias_den = sum(p_core.tolist())

        breakdown = SocketPowerBreakdown(
            static_w=self.spec.power.static_w,
            core_dyn_w=bias_den,
            uncore_w=self.power_model.uncore_power_w(fu, halted),
            dram_w=self.power_model.dram_power_w(dram_gbs))
        return _SegmentRates(
            rate_matrix=rate_matrix,
            res_rows=res_rows,
            uncore_l3_rate=l3_gbs * 1e9,
            uncore_dram_rate=dram_gbs * 1e9,
            uclk_rate=0.0 if halted else fu,
            breakdown=breakdown,
            bias=bias_num / bias_den if bias_den > 0 else _MODELED_IDLE_BIAS,
        )

    def _uniform_rates(self, rate_matrix: np.ndarray, res_rows: np.ndarray,
                       cols: list[int], lane: tuple, fu: float,
                       halted: bool) -> "_SegmentRates":
        """Single-lane segment rates for a homogeneous socket.

        Every active core shares one ``(freq, phase, threads, throttle)``
        lane — lockstep fleets, gang-scheduled sweeps, the tick-heavy
        benchmark — so the per-lane laws are evaluated once as scalars
        and broadcast into the rate matrix. Each expression repeats the
        SoA path verbatim (scalar float64 ops are bit-identical to the
        one-lane elementwise op), and the cross-core reductions replay
        the left-to-right fold over ``n`` equal terms. Guarded by the
        same sanitize cross-check and parity tests as the SoA path.
        """
        f, phase, nthr, exec_throttle = lane
        n = len(cols)
        l3pc = phase.l3_bytes_per_cycle
        drpc = phase.dram_bytes_per_cycle

        l3_rate, dram_rate, l3_gbs, dram_gbs = self.bw_model.solve_uniform(
            n, f, nthr, l3pc, drpc, fu)

        throttle = 1.0
        if phase.bw_bound:
            want = (l3pc + drpc) * f
            if want > 0.0:
                throttle = min(1.0, (l3_rate + dram_rate) / want)

        par = phase.ipc_parity
        ratio = f / max(fu, 1.0)
        ipc = par + phase.ipc_uncore_slope * (1.0 - ratio)
        ipc = max(ipc, 0.05 * par)
        ipc = ipc * throttle
        ipc_thread = ipc * exec_throttle
        instr = ipc_thread * f

        if n == rate_matrix.shape[1]:
            # Whole socket active: one (7,1)-over-(7,n) broadcast fills
            # every row. The scratch column holds plain scalars, so the
            # elements are the identical floats the row-by-row
            # assignments would store.
            scratch = self._uniform_scratch
            scratch[0, 0] = f
            scratch[1, 0] = self.spec.nominal_hz
            scratch[2, 0] = instr
            scratch[3, 0] = instr * nthr
            scratch[4, 0] = phase.stall_fraction * f
            scratch[5, 0] = l3_rate
            scratch[6, 0] = dram_rate
            rate_matrix[_UNIFORM_ROWS] = scratch
        else:
            col_idx = np.array(cols, dtype=np.intp)
            rate_matrix[_ROW_APERF, col_idx] = f
            rate_matrix[_ROW_MPERF, col_idx] = self.spec.nominal_hz
            rate_matrix[_ROW_INSTR_T0, col_idx] = instr
            rate_matrix[_ROW_INSTR_CORE, col_idx] = instr * nthr
            rate_matrix[_ROW_STALL, col_idx] = phase.stall_fraction * f
            rate_matrix[_ROW_L3, col_idx] = l3_rate
            rate_matrix[_ROW_DRAM, col_idx] = dram_rate

        p_core = self.power_model.core_power_w(f, phase.power_activity)
        p_bias = p_core * phase.rapl_model_bias
        bias_num = 0.0
        bias_den = 0.0
        for _ in range(n):
            bias_num += p_bias
            bias_den += p_core

        breakdown = SocketPowerBreakdown(
            static_w=self.spec.power.static_w,
            core_dyn_w=bias_den,
            uncore_w=self.power_model.uncore_power_w(fu, halted),
            dram_w=self.power_model.dram_power_w(dram_gbs))
        return _SegmentRates(
            rate_matrix=rate_matrix,
            res_rows=res_rows,
            uncore_l3_rate=l3_gbs * 1e9,
            uncore_dram_rate=dram_gbs * 1e9,
            uclk_rate=0.0 if halted else fu,
            breakdown=breakdown,
            bias=bias_num / bias_den if bias_den > 0 else _MODELED_IDLE_BIAS,
        )

    # Operating-point memo: tick-heavy workloads cycle through a handful
    # of phase combinations, each revisit bumping the epoch; the memo
    # keys the full rate computation on the operating point itself so a
    # revisited point costs one key build instead of a model evaluation.
    _RATES_MEMO_MAX = 256

    def _gather_key(self) -> tuple:
        """Hashable image of every rate-computation input.

        Phases are frozen dataclasses compared by value, so the key
        cannot alias across distinct operating points; keying by value
        (not ``id``) also makes entries immune to object reuse. The key
        doubles as the gather: :meth:`_rates_from_key` reads its lane
        tuples instead of walking the cores a second time.
        """
        uncore = self.uncore
        requesting = AvxLicense.REQUESTING
        c0 = _CSTATE_C0
        # One comprehension, one conditional expression per core; the
        # throttle term inlines core.execution_throttle().
        return (uncore.freq_hz, uncore.halted) + tuple(
            [(core.freq_hz, p, core._nthr,
              AVX_REQUEST_THROTTLE
              if core.avx_license is requesting else 1.0)
             if (core.cstate is c0 and (p := core._phase) is not None
                 and p.active)
             else core.cstate
             for core in self.cores])

    def _segment_rates(self) -> "_SegmentRates":
        key = self._gather_key()
        memo = self._rates_memo
        rates = memo.get(key)
        if rates is None:
            rates = self._rates_from_key(key)
            if len(memo) >= self._RATES_MEMO_MAX:
                memo.clear()
            memo[key] = rates
        return rates

    def integrate(self, t0_ns: int, t1_ns: int,
                  any_active_in_system: bool) -> None:
        dt_ns = t1_ns - t0_ns
        if dt_ns <= 0:
            return
        dt_s = dt_ns / NS_PER_S
        # Inline fast check of sync_package_state's memo key; the method
        # re-resolves only when the epoch or system activity moved.
        if not (self.fastpath_enabled
                and self._pkg_sync_key == (self.epoch.value,
                                           any_active_in_system)):
            self.sync_package_state(any_active_in_system)
        self._residency_pkg_ns[self.package_cstate] += dt_ns

        rates = self._rates
        if (rates is None or not self.fastpath_enabled
                or self._rates_epoch != self.epoch.value):
            # Fastpath consults the operating-point memo; with the fast
            # path off every segment recomputes genuinely (bit-identical
            # either way — the memo stores what the computation returns).
            rates = self._rates = (self._segment_rates()
                                   if self.fastpath_enabled
                                   else self._compute_rates())
            self._rates_epoch = self.epoch.value
        elif self.sanitize_enabled:
            self._check_epoch_consistency(rates)
        self.last_breakdown = rates.breakdown

        # One vectorized multiply-add advances every counter of every
        # core; scratch avoids a temporary allocation per segment.
        np.multiply(rates.rate_matrix, dt_s, out=self._cnt_scratch)
        self._cnt_data += self._cnt_scratch
        self._cnt_res_flat[rates.res_flat] += dt_ns

        ucnt = self.uncore.counters
        ucnt.l3_bytes += rates.uncore_l3_rate * dt_s
        ucnt.dram_bytes += rates.uncore_dram_rate * dt_s
        ucnt.uclk += rates.uclk_rate * dt_s

        pkg_e = rates.pkg_w * dt_s
        dram_e = rates.breakdown.dram_w * dt_s
        self.energy_pkg_j += pkg_e
        self.energy_dram_j += dram_e
        self.rapl.accumulate_pkg_dram(pkg_e, dram_e, rates.bias)
        self._last_dc_w = rates.dc_w

    def _check_epoch_consistency(self, cached: "_SegmentRates") -> None:
        """Sanitize mode: recompute the cached rates on a sampled segment.

        Runs on cache-hit segments only, every ``EPOCH_CHECK_STRIDE``-th
        hit. The fresh recompute goes through the **vectorized** SoA
        path — the one integration actually uses — deliberately
        bypassing the operating-point memo (a memo hit would just echo
        the possibly-stale cache back at itself). It is then
        cross-checked against the scalar reference, so one sampled
        segment catches both failure modes: a rate-relevant mutation
        that skipped the epoch bump, and a vectorization bug that made
        the SoA path drift from the per-core math. Both computations are
        pure (no RNG, no state mutation), so the check observes without
        perturbing.
        """
        counter = self._sanitize_segments
        self._sanitize_segments = counter + 1
        if counter % sanitize.EPOCH_CHECK_STRIDE != 0:
            return
        self.sanitize_checks += 1
        fresh = self._compute_rates()
        if not np.array_equal(cached.rate_matrix, fresh.rate_matrix):
            bad = np.argwhere(
                cached.rate_matrix != fresh.rate_matrix)[0]
            raise EpochConsistencyError(
                f"socket {self.socket_id}: cached segment rates diverge "
                f"from a fresh recompute at epoch {self.epoch.value} "
                f"(first at row {bad[0]}, core column {bad[1]}) — a "
                "rate-relevant field was mutated without an epoch bump")
        if not np.array_equal(cached.res_rows, fresh.res_rows):
            raise EpochConsistencyError(
                f"socket {self.socket_id}: cached c-state residency rows "
                f"diverge from a fresh recompute at epoch "
                f"{self.epoch.value} — a c-state change skipped the "
                "__setattr__-intercepted path")
        reference = self._compute_rates_scalar()
        if not (np.array_equal(fresh.rate_matrix, reference.rate_matrix)
                and np.array_equal(fresh.res_rows, reference.res_rows)
                and fresh.uncore_l3_rate == reference.uncore_l3_rate
                and fresh.uncore_dram_rate == reference.uncore_dram_rate
                and fresh.uclk_rate == reference.uclk_rate
                and fresh.bias == reference.bias
                and fresh.breakdown == reference.breakdown):
            raise EpochConsistencyError(
                f"socket {self.socket_id}: vectorized segment rates "
                f"diverge from the scalar reference at epoch "
                f"{self.epoch.value} — the SoA integration path lost "
                "bit-parity with the per-core math")

    @staticmethod
    def _bw_throttle(core: Core, phase: WorkloadPhase, bw) -> float:
        """Achieved/demanded traffic ratio for bandwidth-bound phases."""
        if not phase.bw_bound:
            return 1.0
        want = ((phase.l3_bytes_per_cycle + phase.dram_bytes_per_cycle)
                * core.freq_hz)
        if want <= 0:
            return 1.0
        got = (bw.l3_bytes_per_s.get(core.core_id, 0.0)
               + bw.dram_bytes_per_s.get(core.core_id, 0.0))
        return min(1.0, got / want)

    # ---- residency accessor ---------------------------------------------------

    def package_residency_ns(self, state: PackageCState) -> int:
        return self._residency_pkg_ns[state]
