"""Hardware counter state, as sampled by the perfctr instrument.

Mirrors the counters the paper reads via LIKWID: TSC, APERF/MPERF,
retired instructions (per thread and per core), stall cycles, uncore
clocks (``UNCORE_CLOCK:UBOXFIX``), and cache/DRAM traffic.

Storage is structure-of-arrays: a :class:`CoreCounters` is a *view* of
one column of its socket's ``(n_fields, n_cores)`` accumulator matrix,
so :meth:`repro.system.socket.Socket.integrate` advances every counter
of every core with a single vectorized multiply-add per segment. A
standalone ``CoreCounters`` (a core not yet adopted by a socket, or a
:meth:`snapshot`) owns its own one-column storage; the Python attribute
values are materialized lazily, on read.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cstates.states import CState

#: Accumulator row layout, in declaration order of the public attributes.
CORE_COUNTER_FIELDS = (
    "tsc",                   # invariant TSC (nominal-rate) cycles
    "aperf",                 # actual cycles while in C0
    "mperf",                 # nominal-rate cycles while in C0
    "instructions_core",     # retired, all threads
    "instructions_thread0",  # retired, first hardware thread
    "stall_cycles",
    "l3_bytes",
    "dram_bytes",
)
FIELD_ROW = {name: i for i, name in enumerate(CORE_COUNTER_FIELDS)}

#: Residency row layout (shallow to deep).
RESIDENCY_STATES = tuple(CState)
CSTATE_ROW = {state: i for i, state in enumerate(RESIDENCY_STATES)}


class _ResidencyView:
    """Dict-like view of one core's c-state residency column (ns)."""

    __slots__ = ("_col",)

    def __init__(self, col: np.ndarray) -> None:
        self._col = col

    def __getitem__(self, state: CState) -> int:
        return int(self._col[CSTATE_ROW[state]])

    def __setitem__(self, state: CState, value: int) -> None:
        self._col[CSTATE_ROW[state]] = value

    def __iter__(self):
        return iter(RESIDENCY_STATES)

    def __len__(self) -> int:
        return len(RESIDENCY_STATES)

    def __contains__(self, state: object) -> bool:
        return state in CSTATE_ROW

    def keys(self):
        return RESIDENCY_STATES

    def values(self):
        return [int(v) for v in self._col]

    def items(self):
        return [(s, int(self._col[i]))
                for i, s in enumerate(RESIDENCY_STATES)]

    def get(self, state: CState, default: int | None = None):
        if state in CSTATE_ROW:
            return int(self._col[CSTATE_ROW[state]])
        return default

    def __eq__(self, other: object) -> bool:
        if isinstance(other, _ResidencyView):
            return bool(np.array_equal(self._col, other._col))
        if isinstance(other, dict):
            return dict(self.items()) == other
        return NotImplemented

    def __repr__(self) -> str:
        return repr(dict(self.items()))


def _field_property(row: int):
    def _get(self) -> float:
        return float(self._data[row])

    def _set(self, value: float) -> None:
        self._data[row] = value

    return property(_get, _set)


class CoreCounters:
    """Monotonic counters of one core (column view into socket SoA)."""

    __slots__ = ("_data", "_res")

    def __init__(self, tsc: float = 0.0, aperf: float = 0.0,
                 mperf: float = 0.0, instructions_core: float = 0.0,
                 instructions_thread0: float = 0.0,
                 stall_cycles: float = 0.0, l3_bytes: float = 0.0,
                 dram_bytes: float = 0.0) -> None:
        self._data = np.array([tsc, aperf, mperf, instructions_core,
                               instructions_thread0, stall_cycles,
                               l3_bytes, dram_bytes], dtype=np.float64)
        self._res = np.zeros(len(RESIDENCY_STATES), dtype=np.int64)

    tsc = _field_property(FIELD_ROW["tsc"])
    aperf = _field_property(FIELD_ROW["aperf"])
    mperf = _field_property(FIELD_ROW["mperf"])
    instructions_core = _field_property(FIELD_ROW["instructions_core"])
    instructions_thread0 = _field_property(FIELD_ROW["instructions_thread0"])
    stall_cycles = _field_property(FIELD_ROW["stall_cycles"])
    l3_bytes = _field_property(FIELD_ROW["l3_bytes"])
    dram_bytes = _field_property(FIELD_ROW["dram_bytes"])

    @property
    def cstate_residency_ns(self) -> _ResidencyView:
        return _ResidencyView(self._res)

    @cstate_residency_ns.setter
    def cstate_residency_ns(self, mapping) -> None:
        for state, value in dict(mapping).items():
            self._res[CSTATE_ROW[state]] = value

    def adopt(self, data_col: np.ndarray, res_col: np.ndarray) -> None:
        """Rebind to socket-owned SoA columns (carrying current values)."""
        data_col[:] = self._data
        res_col[:] = self._res
        self._data = data_col
        self._res = res_col

    def snapshot(self) -> "CoreCounters":
        """A detached copy with its own storage."""
        copy = CoreCounters()
        copy._data = self._data.copy()
        copy._res = self._res.copy()
        return copy

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CoreCounters):
            return NotImplemented
        return (bool(np.array_equal(self._data, other._data))
                and bool(np.array_equal(self._res, other._res)))

    def __repr__(self) -> str:
        fields = ", ".join(f"{name}={float(self._data[i])!r}"
                           for i, name in enumerate(CORE_COUNTER_FIELDS))
        return f"CoreCounters({fields})"


@dataclass
class UncoreCounters:
    """Monotonic counters of one socket's uncore."""

    uclk: float = 0.0                  # uncore clock ticks (UBOXFIX)
    l3_bytes: float = 0.0
    dram_bytes: float = 0.0

    def snapshot(self) -> "UncoreCounters":
        return UncoreCounters(uclk=self.uclk, l3_bytes=self.l3_bytes,
                              dram_bytes=self.dram_bytes)
