"""Hardware counter state, as sampled by the perfctr instrument.

Mirrors the counters the paper reads via LIKWID: TSC, APERF/MPERF,
retired instructions (per thread and per core), stall cycles, uncore
clocks (``UNCORE_CLOCK:UBOXFIX``), and cache/DRAM traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cstates.states import CState


@dataclass
class CoreCounters:
    """Monotonic counters of one core."""

    tsc: float = 0.0                   # invariant TSC (nominal-rate) cycles
    aperf: float = 0.0                 # actual cycles while in C0
    mperf: float = 0.0                 # nominal-rate cycles while in C0
    instructions_core: float = 0.0     # retired, all threads
    instructions_thread0: float = 0.0  # retired, first hardware thread
    stall_cycles: float = 0.0
    l3_bytes: float = 0.0
    dram_bytes: float = 0.0
    cstate_residency_ns: dict[CState, int] = field(
        default_factory=lambda: {s: 0 for s in CState})

    def snapshot(self) -> "CoreCounters":
        copy = CoreCounters(
            tsc=self.tsc, aperf=self.aperf, mperf=self.mperf,
            instructions_core=self.instructions_core,
            instructions_thread0=self.instructions_thread0,
            stall_cycles=self.stall_cycles,
            l3_bytes=self.l3_bytes, dram_bytes=self.dram_bytes,
        )
        copy.cstate_residency_ns = dict(self.cstate_residency_ns)
        return copy


@dataclass
class UncoreCounters:
    """Monotonic counters of one socket's uncore."""

    uclk: float = 0.0                  # uncore clock ticks (UBOXFIX)
    l3_bytes: float = 0.0
    dram_bytes: float = 0.0

    def snapshot(self) -> "UncoreCounters":
        return UncoreCounters(uclk=self.uclk, l3_bytes=self.l3_bytes,
                              dram_bytes=self.dram_bytes)
