"""The simulated machine: cores, uncore, sockets, node, MSR space."""

from repro.system.counters import CoreCounters, UncoreCounters
from repro.system.core import Core
from repro.system.uncore import Uncore
from repro.system.socket import Socket
from repro.system.node import Node, build_node, build_haswell_node
from repro.system.msr import MsrSpace, MSR

__all__ = [
    "CoreCounters",
    "UncoreCounters",
    "Core",
    "Uncore",
    "Socket",
    "Node",
    "build_node",
    "build_haswell_node",
    "MsrSpace",
    "MSR",
]
