"""Operating-point optimizer: concurrency x frequency under a
performance constraint.

Sweeps (n_cores, p-state) for a given workload on one socket, measures
throughput (bandwidth for bandwidth-bound workloads, IPS otherwise) and
package power, and returns the Pareto-efficient points plus the
minimum-power point that still meets a throughput target. This is the
combined DCT+DVFS optimization the paper says Haswell re-enables for
memory-bound codes (Section VII: "This allows DCT and DVFS optimizations
for memory bound codes").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.system.node import Node
from repro.units import ms
from repro.workloads.base import Workload


@dataclass(frozen=True)
class OperatingPoint:
    n_cores: int
    f_hz: float
    throughput: float          # GB/s or GIPS, depending on the workload
    pkg_power_w: float

    @property
    def efficiency(self) -> float:
        """Throughput per package watt."""
        return self.throughput / self.pkg_power_w if self.pkg_power_w else 0.0


class OperatingPointOptimizer:
    def __init__(self, sim: Simulator, node: Node, socket_id: int = 1,
                 probe_ns: int = ms(10)) -> None:
        self.sim = sim
        self.node = node
        self.socket_id = socket_id
        self.probe_ns = probe_ns

    def _measure(self, workload: Workload, n_cores: int,
                 f_hz: float) -> OperatingPoint:
        socket = self.node.sockets[self.socket_id]
        core_ids = [c.core_id for c in socket.cores[:n_cores]]
        self.node.run_workload(core_ids, workload)
        self.node.set_pstate(core_ids, f_hz)
        self.sim.run_for(ms(3))
        bw_bound = workload.phases[0].bw_bound
        b0 = socket.uncore.counters.dram_bytes + socket.uncore.counters.l3_bytes
        i0 = sum(c.counters.instructions_core for c in socket.cores)
        e0 = socket.energy_pkg_j
        t0 = self.sim.now_ns
        self.sim.run_for(self.probe_ns)
        dt = (self.sim.now_ns - t0) / 1e9
        if bw_bound:
            throughput = (socket.uncore.counters.dram_bytes
                          + socket.uncore.counters.l3_bytes - b0) / dt / 1e9
        else:
            throughput = (sum(c.counters.instructions_core
                              for c in socket.cores) - i0) / dt / 1e9
        power = (socket.energy_pkg_j - e0) / dt
        self.node.stop_workload(core_ids)
        return OperatingPoint(n_cores=n_cores, f_hz=f_hz,
                              throughput=throughput, pkg_power_w=power)

    def sweep(self, workload: Workload,
              core_counts: list[int] | None = None,
              freqs_hz: list[float] | None = None) -> list[OperatingPoint]:
        spec = self.node.spec.cpu
        socket = self.node.sockets[self.socket_id]
        if core_counts is None:
            core_counts = [1, 2, 4, 8, len(socket.cores)]
        if freqs_hz is None:
            freqs_hz = [spec.min_hz, spec.pstates_hz[len(spec.pstates_hz) // 2],
                        spec.nominal_hz]
        if any(n < 1 or n > len(socket.cores) for n in core_counts):
            raise ConfigurationError("core count outside the socket")
        return [self._measure(workload, n, f)
                for n in core_counts for f in freqs_hz]

    @staticmethod
    def pareto_front(points: list[OperatingPoint]) -> list[OperatingPoint]:
        """Points not dominated in (throughput up, power down)."""
        front = []
        for p in points:
            dominated = any(
                q.throughput >= p.throughput and q.pkg_power_w < p.pkg_power_w
                or q.throughput > p.throughput
                and q.pkg_power_w <= p.pkg_power_w
                for q in points)
            if not dominated:
                front.append(p)
        return sorted(front, key=lambda p: p.pkg_power_w)

    @staticmethod
    def cheapest_meeting(points: list[OperatingPoint],
                         throughput_target: float) -> OperatingPoint:
        feasible = [p for p in points if p.throughput >= throughput_target]
        if not feasible:
            raise ConfigurationError(
                f"no operating point reaches {throughput_target}")
        return min(feasible, key=lambda p: p.pkg_power_w)
