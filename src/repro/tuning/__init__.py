"""Energy-efficiency tuning strategies on top of the simulated node.

The paper's closing argument (Section IX): Haswell-EP's slow, quantized
p-state grants weaken DVFS in dynamic scenarios, while its microsecond
c-state wakes make dynamic concurrency throttling (DCT) viable; and the
frequency-independence of saturated DRAM bandwidth re-enables frequency
scaling for memory-bound codes. This package turns those observations
into runnable controllers and an operating-point optimizer — the API a
downstream energy-aware runtime would adopt.
"""

from repro.tuning.dvfs import DvfsController
from repro.tuning.dct import DctController
from repro.tuning.optimizer import OperatingPoint, OperatingPointOptimizer
from repro.tuning.edp import EdpAnalysis, EdpPoint

__all__ = [
    "DvfsController",
    "DctController",
    "OperatingPoint",
    "OperatingPointOptimizer",
    "EdpAnalysis",
    "EdpPoint",
]
