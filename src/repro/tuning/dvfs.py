"""A stall-driven DVFS controller.

Lowers the clock of cores whose workloads are dominated by memory stalls
(their performance barely depends on the core clock once the uncore
carries the traffic — Section VII), and restores it when the workload
turns compute-bound. Reaction time is bounded below by the PCU's ~500 us
grant quantum, which the controller accounts for in its cooldown.

The controller can act through either control surface:

* **direct** (default) — ``node.set_pstate`` calls, as an in-simulator
  governor would;
* **hostif** — pass a started :class:`repro.hostif.VirtualHost` and
  every frequency change is an ``echo`` into
  ``cpufreq/scaling_setspeed`` under the userspace governor, exactly
  what a real tuning daemon does. The write-through guarantee of the
  host interface makes the two bit-identical (``tests/test_tuning.py``
  asserts it), extending the hostif parity contract to the tuning path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.system.node import Node
from repro.units import ms

if TYPE_CHECKING:
    from repro.hostif import VirtualHost

_SYS = "/sys/devices/system/cpu"


@dataclass
class DvfsDecision:
    time_ns: int
    core_id: int
    target_hz: float
    reason: str


class DvfsController:
    """Per-core stall-fraction thresholding with hysteresis."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        period_ns: int = ms(10),
        stall_high: float = 0.5,
        stall_low: float = 0.2,
        low_hz: float | None = None,
        high_hz: float | None = None,
        host: "VirtualHost | None" = None,
    ) -> None:
        if not (0.0 <= stall_low < stall_high <= 1.0):
            raise ConfigurationError("need 0 <= stall_low < stall_high <= 1")
        if host is not None and host.node is not node:
            raise ConfigurationError(
                "host interface belongs to a different node")
        self.sim = sim
        self.node = node
        self.host = host
        self.period_ns = period_ns
        self.stall_high = stall_high
        self.stall_low = stall_low
        spec = node.spec.cpu
        self.low_hz = low_hz if low_hz is not None else spec.min_hz
        self.high_hz = high_hz if high_hz is not None else spec.nominal_hz
        self.decisions: list[DvfsDecision] = []
        self._last_stall: dict[int, float] = {}
        self._task = None

    def start(self) -> None:
        if self._task is not None:
            raise ConfigurationError("controller already running")
        if self.host is not None:
            # scaling_setspeed is only writable under userspace; claim
            # the policies up front like a real tuning daemon would.
            for cpu in self.host.cpu_ids:
                self.host.sysfs.write(
                    f"{_SYS}/cpu{cpu}/cpufreq/scaling_governor", "userspace")
        self._snapshot()
        self._task = self.sim.schedule_every(self.period_ns, self._tick,
                                             label="dvfs-controller")

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _snapshot(self) -> None:
        for core in self.node.all_cores:
            self._last_stall[core.core_id] = core.counters.stall_cycles

    def _set_frequency(self, core_id: int, f_hz: float) -> None:
        """One frequency change through the selected control surface."""
        if self.host is None:
            self.node.set_pstate([core_id], f_hz)
        else:
            self.host.sysfs.write(
                f"{_SYS}/cpu{core_id}/cpufreq/scaling_setspeed",
                str(int(round(f_hz / 1e3))))

    def _tick(self, now_ns: int) -> None:
        for core in self.node.all_cores:
            if not core.is_active:
                continue
            d_stall = core.counters.stall_cycles \
                - self._last_stall[core.core_id]
            cycles = self.period_ns / 1e9 * max(core.freq_hz, 1.0)
            stall_frac = min(d_stall / cycles, 1.0)
            if stall_frac >= self.stall_high \
                    and (core.requested_hz or 0) != self.low_hz:
                self._set_frequency(core.core_id, self.low_hz)
                self.decisions.append(DvfsDecision(
                    now_ns, core.core_id, self.low_hz,
                    f"stall fraction {stall_frac:.2f} >= {self.stall_high}"))
            elif stall_frac <= self.stall_low \
                    and (core.requested_hz or 0) != self.high_hz:
                self._set_frequency(core.core_id, self.high_hz)
                self.decisions.append(DvfsDecision(
                    now_ns, core.core_id, self.high_hz,
                    f"stall fraction {stall_frac:.2f} <= {self.stall_low}"))
        self._snapshot()
