"""A dynamic-concurrency-throttling controller.

For bandwidth-saturated workloads, running more cores than the
saturation point buys no bandwidth but burns core power (Fig. 8: DRAM
saturates at 8 cores). The controller measures the marginal bandwidth of
the last-added core and parks cores whose contribution falls below a
threshold; parked cores return in microseconds when the workload changes
(the paper's DVFS-vs-DCT argument).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.system.node import Node
from repro.units import ms
from repro.workloads.base import Workload


@dataclass(frozen=True)
class DctStep:
    n_cores: int
    total_gbs: float
    marginal_gbs: float


class DctController:
    """Finds the minimal concurrency that preserves bandwidth."""

    def __init__(self, sim: Simulator, node: Node, socket_id: int = 1,
                 marginal_threshold_gbs: float = 1.0,
                 probe_ns: int = ms(10)) -> None:
        if marginal_threshold_gbs <= 0:
            raise ConfigurationError("threshold must be positive")
        self.sim = sim
        self.node = node
        self.socket_id = socket_id
        self.marginal_threshold_gbs = marginal_threshold_gbs
        self.probe_ns = probe_ns
        self.steps: list[DctStep] = []

    def _measure_gbs(self, core_ids: list[int], workload: Workload) -> float:
        socket = self.node.sockets[self.socket_id]
        self.node.run_workload(core_ids, workload)
        self.sim.run_for(ms(2))              # settle PCU/UFS
        b0 = socket.uncore.counters.dram_bytes + socket.uncore.counters.l3_bytes
        t0 = self.sim.now_ns
        self.sim.run_for(self.probe_ns)
        b1 = socket.uncore.counters.dram_bytes + socket.uncore.counters.l3_bytes
        dt = (self.sim.now_ns - t0) / 1e9
        self.node.stop_workload(core_ids)
        return (b1 - b0) / dt / 1e9

    def find_concurrency(self, workload: Workload,
                         max_cores: int | None = None) -> int:
        """Smallest core count whose marginal bandwidth gain has collapsed.

        Ramps concurrency up and stops one past the point where adding a
        core contributes less than the threshold.
        """
        socket = self.node.sockets[self.socket_id]
        limit = max_cores if max_cores is not None else len(socket.cores)
        if not (1 <= limit <= len(socket.cores)):
            raise ConfigurationError("max_cores outside the socket")
        self.steps = []
        prev_gbs = 0.0
        best_n = 1
        for n in range(1, limit + 1):
            core_ids = [c.core_id for c in socket.cores[:n]]
            total = self._measure_gbs(core_ids, workload)
            marginal = total - prev_gbs
            self.steps.append(DctStep(n, total, marginal))
            if n > 1 and marginal < self.marginal_threshold_gbs:
                break
            best_n = n
            prev_gbs = total
        return best_n

    def apply(self, workload: Workload, n_cores: int) -> list[int]:
        """Run the workload on ``n_cores`` of the socket; park the rest."""
        socket = self.node.sockets[self.socket_id]
        active = [c.core_id for c in socket.cores[:n_cores]]
        parked = [c.core_id for c in socket.cores[n_cores:]]
        self.node.stop_workload(parked)
        self.node.run_workload(active, workload)
        return active
