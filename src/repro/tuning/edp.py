"""Energy-delay-product frequency analysis.

Sweeps the p-state range for a fixed workload/concurrency and evaluates
energy, delay (1/throughput), EDP and ED²P. The classic result the
paper's Section VII enables on Haswell: for memory-bound codes the
EDP-optimal frequency collapses toward the bottom of the range (delay
barely moves, energy does), while compute-bound codes optimize at high
frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.specs.node import HASWELL_TEST_NODE, NodeSpec
from repro.system.node import build_node
from repro.units import ms
from repro.workloads.base import Workload


@dataclass(frozen=True)
class EdpPoint:
    f_hz: float
    throughput: float          # work units per second (GIPS or GB/s)
    pkg_power_w: float

    @property
    def delay(self) -> float:
        """Time per unit of work (the inverse of throughput)."""
        return 1.0 / self.throughput if self.throughput > 0 else float("inf")

    @property
    def energy_per_work(self) -> float:
        return self.pkg_power_w * self.delay

    @property
    def edp(self) -> float:
        return self.energy_per_work * self.delay

    @property
    def ed2p(self) -> float:
        return self.edp * self.delay


class EdpAnalysis:
    """Frequency sweep + metric minimization on one socket."""

    def __init__(self, node_spec: NodeSpec = HASWELL_TEST_NODE,
                 socket_id: int = 1, probe_ns: int = ms(10),
                 seed: int = 141) -> None:
        self.node_spec = node_spec
        self.socket_id = socket_id
        self.probe_ns = probe_ns
        self.seed = seed

    def sweep(self, workload: Workload, n_cores: int,
              freqs_hz: list[float] | None = None) -> list[EdpPoint]:
        spec = self.node_spec.cpu
        if not (1 <= n_cores <= spec.n_cores):
            raise ConfigurationError("core count outside the socket")
        freqs = freqs_hz if freqs_hz is not None else list(spec.pstates_hz)
        sim = Simulator(seed=self.seed)
        node = build_node(sim, self.node_spec)
        socket = node.sockets[self.socket_id]
        core_ids = [c.core_id for c in socket.cores[:n_cores]]
        node.run_workload(core_ids, workload)
        bw_bound = workload.phases[0].bw_bound

        points = []
        for f in freqs:
            node.set_pstate(core_ids, f)
            sim.run_for(ms(3))
            e0 = socket.energy_pkg_j
            i0 = sum(c.counters.instructions_core for c in socket.cores)
            b0 = (socket.uncore.counters.dram_bytes
                  + socket.uncore.counters.l3_bytes)
            t0 = sim.now_ns
            sim.run_for(self.probe_ns)
            dt = (sim.now_ns - t0) / 1e9
            if bw_bound:
                throughput = (socket.uncore.counters.dram_bytes
                              + socket.uncore.counters.l3_bytes - b0) \
                    / dt / 1e9
            else:
                throughput = (sum(c.counters.instructions_core
                                  for c in socket.cores) - i0) / dt / 1e9
            points.append(EdpPoint(
                f_hz=f,
                throughput=throughput,
                pkg_power_w=(socket.energy_pkg_j - e0) / dt,
            ))
        return points

    @staticmethod
    def optimal(points: list[EdpPoint], metric: str = "edp") -> EdpPoint:
        if metric not in ("energy", "edp", "ed2p", "delay"):
            raise ConfigurationError(f"unknown metric {metric!r}")
        key = {
            "energy": lambda p: p.energy_per_work,
            "edp": lambda p: p.edp,
            "ed2p": lambda p: p.ed2p,
            "delay": lambda p: p.delay,
        }[metric]
        return min(points, key=key)
