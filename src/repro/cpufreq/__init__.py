"""A Linux-cpufreq-like frequency-control subsystem.

The paper's FTaLaT modification exists because ``scaling_cur_freq`` "is
not a reliable indicator for an actual frequency switch in hardware"
(Section VI-A). This package models the software stack that produces
that unreliability: per-core policies, governors, and the sysfs-style
attribute surface whose cached value lags the hardware.
"""

from repro.cpufreq.policy import CpufreqPolicy, Governor
from repro.cpufreq.subsystem import CpufreqSubsystem

__all__ = ["CpufreqPolicy", "Governor", "CpufreqSubsystem"]
