"""The cpufreq subsystem: policies wired to the simulated node.

Runs a periodic governor tick (ondemand-style sampling), computes
utilization from APERF/MPERF deltas, and forwards requests through
``Node.set_pstate`` — where Haswell's PCU grant machinery takes over.
``scaling_cur_freq`` reflects the *request*, and
``verified_cur_freq`` reads the cycle counters the way the paper's
modified FTaLaT does; tests assert they disagree right after a request.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cpufreq.policy import CpufreqPolicy, Governor
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.system.node import Node
from repro.units import ms, NS_PER_S


@dataclass
class _CoreSnapshot:
    time_ns: int = 0
    aperf: float = 0.0
    mperf: float = 0.0
    tsc: float = 0.0


class CpufreqSubsystem:
    """One policy per core, plus the sampling tick."""

    def __init__(self, sim: Simulator, node: Node,
                 sampling_period_ns: int = ms(10)) -> None:
        self.sim = sim
        self.node = node
        self.policies: dict[int, CpufreqPolicy] = {
            core.core_id: CpufreqPolicy(spec=core.spec, core_id=core.core_id)
            for core in node.all_cores
        }
        self.sampling_period_ns = sampling_period_ns
        self._snapshots: dict[int, _CoreSnapshot] = {
            cid: _CoreSnapshot() for cid in self.policies}
        self._task = None

    # ---- sysfs-like surface ----------------------------------------------------

    def policy(self, core_id: int) -> CpufreqPolicy:
        try:
            return self.policies[core_id]
        except KeyError:
            raise ConfigurationError(f"no policy for core {core_id}") from None

    def set_governor(self, governor: Governor,
                     core_ids: list[int] | None = None) -> None:
        for cid in (core_ids if core_ids is not None else self.policies):
            self.policies[cid].governor = governor

    def scaling_cur_freq(self, core_id: int) -> float:
        """What sysfs reports — the last request, not the granted value."""
        return self.policy(core_id).scaling_cur_freq_hz

    def verified_cur_freq(self, core_id: int, window_ns: int = ms(1)) -> float:
        """Frequency verified via cycle counters over a busy window
        (the paper's FTaLaT modification)."""
        core = self.node.core(core_id)
        a0 = core.counters.aperf
        t0 = self.sim.now_ns
        self.sim.run_for(window_ns)
        dt_s = (self.sim.now_ns - t0) / NS_PER_S
        return (core.counters.aperf - a0) / dt_s

    # ---- governor tick ----------------------------------------------------------------

    def start(self) -> None:
        if self._task is not None:
            raise ConfigurationError("cpufreq subsystem already started")
        self._snapshot_all(self.sim.now_ns)
        self._task = self.sim.schedule_every(
            self.sampling_period_ns, self._tick, label="cpufreq-tick")

    def stop(self) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _snapshot_all(self, now_ns: int) -> None:
        for cid, snap in self._snapshots.items():
            counters = self.node.core(cid).counters
            snap.time_ns = now_ns
            snap.aperf = counters.aperf
            snap.mperf = counters.mperf
            snap.tsc = counters.tsc

    def utilization(self, core_id: int, now_ns: int) -> float:
        """Busy fraction since the last snapshot (MPERF over TSC)."""
        snap = self._snapshots[core_id]
        counters = self.node.core(core_id).counters
        d_tsc = counters.tsc - snap.tsc
        if d_tsc <= 0:
            return 0.0
        return min((counters.mperf - snap.mperf) / d_tsc, 1.0)

    def _tick(self, now_ns: int) -> None:
        for cid, policy in self.policies.items():
            target = policy.decide(self.utilization(cid, now_ns))
            core = self.node.core(cid)
            if policy.governor is Governor.USERSPACE \
                    and policy.scaling_setspeed_hz is None:
                continue
            if abs((core.requested_hz or 0.0) - target) > 1e6:
                self.node.set_pstate([cid], target)
        self._snapshot_all(now_ns)
