"""Per-core cpufreq policy and governors."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specs.cpu import CpuSpec


class Governor(enum.Enum):
    PERFORMANCE = "performance"   # pin scaling_max
    POWERSAVE = "powersave"       # pin scaling_min
    USERSPACE = "userspace"       # honor scaling_setspeed
    ONDEMAND = "ondemand"         # utilization-driven


@dataclass
class CpufreqPolicy:
    """The sysfs-visible frequency policy of one core.

    ``scaling_cur_freq`` is the *software's* idea of the frequency: the
    last value the governor requested — not what the PCU granted. The
    paper's point exactly.
    """

    spec: CpuSpec
    core_id: int
    governor: Governor = Governor.ONDEMAND
    scaling_min_hz: float = 0.0
    scaling_max_hz: float = 0.0
    scaling_setspeed_hz: float | None = None
    scaling_cur_freq_hz: float = 0.0          # cached, possibly stale
    # ondemand tunables (fractions of utilization)
    up_threshold: float = 0.80
    down_threshold: float = 0.20

    def __post_init__(self) -> None:
        if self.scaling_min_hz == 0.0:
            self.scaling_min_hz = self.spec.min_hz
        if self.scaling_max_hz == 0.0:
            self.scaling_max_hz = self.spec.nominal_hz
        if self.scaling_cur_freq_hz == 0.0:
            self.scaling_cur_freq_hz = self.scaling_max_hz
        self._validate_limits()

    def _validate_limits(self) -> None:
        if not (self.spec.min_hz <= self.scaling_min_hz
                <= self.scaling_max_hz <= self.spec.nominal_hz):
            raise ConfigurationError(
                f"core {self.core_id}: scaling limits outside the p-state "
                "range")

    def set_limits(self, min_hz: float, max_hz: float) -> None:
        self.scaling_min_hz = self.spec.validate_pstate(min_hz)
        self.scaling_max_hz = self.spec.validate_pstate(max_hz)
        self._validate_limits()

    def set_speed(self, f_hz: float) -> None:
        if self.governor is not Governor.USERSPACE:
            raise ConfigurationError(
                "scaling_setspeed requires the userspace governor")
        self.scaling_setspeed_hz = self.spec.validate_pstate(f_hz)

    def decide(self, utilization: float) -> float:
        """The governor's frequency request for the observed utilization."""
        if not (0.0 <= utilization <= 1.0):
            raise ConfigurationError("utilization outside [0, 1]")
        if self.governor is Governor.PERFORMANCE:
            target = self.scaling_max_hz
        elif self.governor is Governor.POWERSAVE:
            target = self.scaling_min_hz
        elif self.governor is Governor.USERSPACE:
            target = self.scaling_setspeed_hz \
                if self.scaling_setspeed_hz is not None \
                else self.scaling_cur_freq_hz
        else:  # ONDEMAND
            if utilization >= self.up_threshold:
                target = self.scaling_max_hz
            elif utilization <= self.down_threshold:
                target = self.scaling_min_hz
            else:
                # proportional: freq that would put utilization at ~80 %
                want = self.scaling_cur_freq_hz * utilization \
                    / self.up_threshold
                target = self.spec.nearest_pstate(want)
        target = min(max(target, self.scaling_min_hz), self.scaling_max_hz)
        self.scaling_cur_freq_hz = target     # the cached (stale) value
        return target
