"""Power delivery, power modeling, and RAPL energy accounting."""

from repro.power.fivr import Fivr
from repro.power.mbvr import Mbvr, MbvrPowerState, SvidCommand
from repro.power.model import PowerModel, SocketPowerBreakdown
from repro.power.rapl import (
    RaplDomain,
    RaplBank,
    MeasuredRaplBackend,
    ModeledRaplBackend,
    DramRaplMode,
)
from repro.power.psu import PsuModel

__all__ = [
    "Fivr",
    "Mbvr",
    "MbvrPowerState",
    "SvidCommand",
    "PowerModel",
    "SocketPowerBreakdown",
    "RaplDomain",
    "RaplBank",
    "MeasuredRaplBackend",
    "ModeledRaplBackend",
    "DramRaplMode",
    "PsuModel",
]
