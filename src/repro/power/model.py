"""Calibrated socket power model.

``P_pkg = static + sum_i a_i * g(f_i) + u * g(f_u)`` with
``g(f) = f_ghz * V(f)^2`` — the classic CMOS dynamic-power law over the
affine V/f curve. Coefficients come from :class:`repro.specs.cpu.PowerCoefficients`
and were calibrated against the paper's measured operating points (see
specs/cpu.py docstring and DESIGN.md).

The same model serves two masters:

* the *ground truth* — what the simulated silicon actually dissipates,
  what the LMG450 sees through the PSU, and what Haswell's measured RAPL
  reports;
* the PCU's TDP solver — real Haswell enforces RAPL limits against its
  own measurement, so PCU and ground truth sharing the model is faithful,
  not a shortcut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import brentq

from repro.errors import ConfigurationError
from repro.specs.cpu import CpuSpec
from repro.units import to_ghz


@dataclass(frozen=True)
class SocketPowerBreakdown:
    """Per-component instantaneous power of one socket (watts)."""

    static_w: float
    core_dyn_w: float
    uncore_w: float
    dram_w: float

    @property
    def package_w(self) -> float:
        """RAPL package domain: everything on the die."""
        return self.static_w + self.core_dyn_w + self.uncore_w

    @property
    def total_w(self) -> float:
        """Package + DRAM (the two Haswell-EP RAPL domains)."""
        return self.package_w + self.dram_w


class PowerModel:
    """Power evaluation and TDP-budget solvers for one socket."""

    def __init__(self, spec: CpuSpec, voltage_offset_v: float = 0.0) -> None:
        self.spec = spec
        self.voltage_offset_v = voltage_offset_v
        self._vf_core = spec.vf_core.with_offset(voltage_offset_v)
        self._vf_uncore = spec.vf_uncore.with_offset(voltage_offset_v)

    # ---- primitive terms ----------------------------------------------------

    def _g_core(self, f_hz: float) -> float:
        v = self._vf_core.voltage(f_hz)
        return to_ghz(f_hz) * v * v

    def _g_uncore(self, f_hz: float) -> float:
        v = self._vf_uncore.voltage(f_hz)
        return to_ghz(f_hz) * v * v

    def core_power_w(self, f_hz: float, activity: float) -> float:
        """Dynamic power of one active core.

        Activity is on the FIRESTARTER=1.0 scale; LINPACK's dense FMA
        phases exceed it slightly (see workloads.base.MAX_ACTIVITY).
        """
        if not (0.0 <= activity <= 1.2):
            raise ConfigurationError(f"activity {activity} outside [0, 1.2]")
        return self.spec.power.core_dyn_w_per_ghz_v2 * activity * self._g_core(f_hz)

    def core_power_w_array(self, f_hz: np.ndarray,
                           activity: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`core_power_w` over per-core float64 arrays.

        Bit-identical per lane to the scalar path (same expression
        associativity: ``(coef * activity) * ((f/1e9 * v) * v)``); the
        socket integrator relies on this to keep the vectorized segment
        rates byte-equal to the scalar reference.
        """
        if np.any((activity < 0.0) | (activity > 1.2)):
            raise ConfigurationError("activity outside [0, 1.2]")
        v = self._vf_core.voltage_array(f_hz)
        g = to_ghz(f_hz) * v * v
        return self.spec.power.core_dyn_w_per_ghz_v2 * activity * g

    def uncore_power_w(self, f_u_hz: float, halted: bool = False) -> float:
        """Uncore (ring, L3, IMC logic) power; zero when clock is halted."""
        if halted:
            return 0.0
        return self.spec.power.uncore_dyn_w_per_ghz_v2 * self._g_uncore(f_u_hz)

    def dram_power_w(self, dram_gbs: float) -> float:
        """DRAM domain power for ``dram_gbs`` GB/s of traffic."""
        return self.spec.power.dram_idle_w + self.spec.power.dram_w_per_gbs * dram_gbs

    # ---- aggregate ------------------------------------------------------------

    def socket_power(
        self,
        core_points: list[tuple[float, float]],   # (f_hz, activity) of C0 cores
        f_uncore_hz: float,
        uncore_halted: bool,
        dram_gbs: float,
    ) -> SocketPowerBreakdown:
        core_dyn = sum(self.core_power_w(f, a) for f, a in core_points)
        return SocketPowerBreakdown(
            static_w=self.spec.power.static_w,
            core_dyn_w=core_dyn,
            uncore_w=self.uncore_power_w(f_uncore_hz, uncore_halted),
            dram_w=self.dram_power_w(dram_gbs),
        )

    # ---- TDP solvers (used by the PCU) ---------------------------------------

    def package_power_at(self, f_core_hz: float, f_uncore_hz: float,
                         activity_sum: float) -> float:
        """Package power with all active cores at a common (f, activity)."""
        return (self.spec.power.static_w
                + self.spec.power.core_dyn_w_per_ghz_v2
                * activity_sum * self._g_core(f_core_hz)
                + self.uncore_power_w(f_uncore_hz))

    def solve_uncore_for_budget(self, f_core_hz: float, activity_sum: float,
                                budget_w: float) -> float:
        """Max uncore frequency such that package power fits in ``budget_w``.

        Returns the spec's uncore minimum if even that exceeds the budget,
        and the maximum if the budget is never reached.
        """
        lo, hi = self.spec.uncore_min_hz, self.spec.uncore_max_hz

        def excess(f_u: float) -> float:
            return self.package_power_at(f_core_hz, f_u, activity_sum) - budget_w

        if excess(lo) >= 0.0:
            return lo
        if excess(hi) <= 0.0:
            return hi
        return float(brentq(excess, lo, hi, xtol=1e5))

    def solve_core_for_budget(self, activity_sum: float, budget_w: float,
                              uncore_parity: float = 1.01) -> float:
        """Max common core frequency with the uncore held at parity.

        Models the balanced-EPB PCU behaviour observed in Table IV: when
        both domains are constrained, the PCU scales them down together
        along ``f_u = parity * f_c``.
        """
        lo, hi = self.spec.min_hz, self.spec.turbo.max_hz

        def excess(f_c: float) -> float:
            f_u = min(max(f_c * uncore_parity, self.spec.uncore_min_hz),
                      self.spec.uncore_max_hz)
            return self.package_power_at(f_c, f_u, activity_sum) - budget_w

        if excess(lo) >= 0.0:
            return lo
        if excess(hi) <= 0.0:
            return hi
        return float(brentq(excess, lo, hi, xtol=1e5))
