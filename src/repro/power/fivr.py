"""Fully integrated voltage regulators (Section II-B).

Haswell moves the per-domain voltage regulators onto the die: one FIVR
per core plus one for the uncore. Each FIVR converts from the shared
VCCin input rail (delivered by the mainboard regulator, see
:mod:`repro.power.mbvr`) to its domain voltage, with a conversion loss.
Per-core FIVRs are what make per-core p-states (PCPS) possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.specs.vf import VfCurve


@dataclass
class Fivr:
    """One on-die voltage regulator domain."""

    domain: str                   # e.g. "core3", "uncore"
    vf_curve: VfCurve
    efficiency: float = 0.90      # FIVR conversion efficiency
    enabled: bool = True
    _output_voltage: float = field(init=False, default=0.0)

    def __post_init__(self) -> None:
        if not (0.5 < self.efficiency <= 1.0):
            raise ConfigurationError("implausible FIVR efficiency")

    @property
    def output_voltage(self) -> float:
        """Current domain voltage (0 when gated off)."""
        return self._output_voltage if self.enabled else 0.0

    _last_f_hz: float = field(init=False, default=-1.0)

    def set_frequency(self, f_hz: float) -> float:
        """Regulate the domain voltage for ``f_hz``; returns the voltage."""
        if f_hz != self._last_f_hz:
            self._last_f_hz = f_hz
            self._output_voltage = self.vf_curve.voltage(f_hz)
        return self._output_voltage

    def gate_off(self) -> None:
        """Power-gate the domain (deep c-state)."""
        self.enabled = False

    def gate_on(self) -> None:
        self.enabled = True

    def input_power_w(self, load_w: float) -> float:
        """VCCin power drawn to deliver ``load_w`` at the output."""
        if not self.enabled or load_w <= 0.0:
            return 0.0
        return load_w / self.efficiency
