"""Chassis-level AC power: PSU losses, fans, board consumers.

The LMG450 measures at the wall, so the AC value a Fig. 2 experiment sees
is the DC draw pushed through this transfer function. The quadratic
coefficients live in :class:`repro.specs.node.NodeSpec` and are calibrated
so the paper's AC-vs-RAPL quadratic fit emerges from the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.specs.node import NodeSpec


@dataclass(frozen=True)
class PsuModel:
    """Wraps the node spec's AC transfer function."""

    node_spec: NodeSpec

    def ac_power_w(self, dc_rapl_visible_w: float) -> float:
        return self.node_spec.ac_power_w(dc_rapl_visible_w)

    def efficiency(self, dc_rapl_visible_w: float) -> float:
        """Apparent end-to-end efficiency DC/AC at this operating point."""
        total_dc = dc_rapl_visible_w + self.node_spec.board_dc_w
        ac = self.ac_power_w(dc_rapl_visible_w)
        return total_dc / ac if ac > 0 else 0.0
