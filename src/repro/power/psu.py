"""Chassis-level AC power: PSU losses, fans, board consumers.

The LMG450 measures at the wall, so the AC value a Fig. 2 experiment sees
is the DC draw pushed through this transfer function. The quadratic
coefficients live in :class:`repro.specs.node.NodeSpec` and are calibrated
so the paper's AC-vs-RAPL quadratic fit emerges from the simulation.

Brownouts: a sagging AC input makes a switch-mode PSU draw *more* current
(and lose more in conversion) for the same DC output. ``input_sag_frac``
models that as a multiplicative penalty on the wall draw; the fault
injector drives it for seeded brownout episodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specs.node import NodeSpec

# A sag beyond 50 % would have tripped the node, not browned it out.
_MAX_SAG_FRAC = 0.5


@dataclass
class PsuModel:
    """Wraps the node spec's AC transfer function."""

    node_spec: NodeSpec
    # Fractional AC-side penalty while the input sags (0.0 = healthy).
    input_sag_frac: float = 0.0

    def set_input_sag(self, frac: float) -> None:
        if not 0.0 <= frac <= _MAX_SAG_FRAC:
            raise ConfigurationError(
                f"input sag {frac} outside [0, {_MAX_SAG_FRAC}]")
        self.input_sag_frac = frac

    def ac_power_w(self, dc_rapl_visible_w: float) -> float:
        return (self.node_spec.ac_power_w(dc_rapl_visible_w)
                * (1.0 + self.input_sag_frac))

    def efficiency(self, dc_rapl_visible_w: float) -> float:
        """Apparent end-to-end efficiency DC/AC at this operating point."""
        total_dc = dc_rapl_visible_w + self.node_spec.board_dc_w
        ac = self.ac_power_w(dc_rapl_visible_w)
        return total_dc / ac if ac > 0 else 0.0
