"""Mainboard voltage regulator with SVID control (Section II-B).

With FIVR on die, only three voltage lanes remain attached to the
processor: VCCin plus two DRAM lanes (VCCD_01, VCCD_23) — down from five
lanes on previous products. The processor steers the input voltage via
serial voltage ID (SVID) commands, and the MBVR supports three power
states that the processor selects according to its estimated power draw.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class MbvrPowerState(enum.Enum):
    """MBVR efficiency states (PS0 = full power ... PS2 = light load)."""

    PS0 = 0
    PS1 = 1
    PS2 = 2


@dataclass(frozen=True)
class SvidCommand:
    """One serial-voltage-ID request from the processor to the MBVR."""

    lane: str                 # "VCCin" | "VCCD_01" | "VCCD_23"
    voltage: float

    VALID_LANES = ("VCCin", "VCCD_01", "VCCD_23")

    def __post_init__(self) -> None:
        if self.lane not in self.VALID_LANES:
            raise ConfigurationError(
                f"unknown SVID lane {self.lane!r}; Haswell-EP exposes only "
                f"{self.VALID_LANES} (Section II-B)")
        if not (0.0 <= self.voltage <= 3.0):
            raise ConfigurationError(f"implausible SVID voltage {self.voltage}")


# Power thresholds (W) above which the MBVR moves to a stronger state.
_PS_THRESHOLDS_W = (0.0, 20.0, 90.0)


@dataclass
class Mbvr:
    """The mainboard regulator: three lanes, three power states."""

    lanes: dict[str, float] = field(
        default_factory=lambda: {lane: 0.0 for lane in SvidCommand.VALID_LANES})
    power_state: MbvrPowerState = MbvrPowerState.PS2
    command_log: list[SvidCommand] = field(default_factory=list)

    def apply(self, command: SvidCommand) -> None:
        self.lanes[command.lane] = command.voltage
        self.command_log.append(command)

    def select_power_state(self, estimated_load_w: float) -> MbvrPowerState:
        """Pick the efficiency state for the estimated processor load."""
        if estimated_load_w >= _PS_THRESHOLDS_W[2]:
            self.power_state = MbvrPowerState.PS0
        elif estimated_load_w >= _PS_THRESHOLDS_W[1]:
            self.power_state = MbvrPowerState.PS1
        else:
            self.power_state = MbvrPowerState.PS2
        return self.power_state

    def efficiency(self) -> float:
        """Conversion efficiency in the current power state."""
        return {
            MbvrPowerState.PS0: 0.92,
            MbvrPowerState.PS1: 0.90,
            MbvrPowerState.PS2: 0.85,
        }[self.power_state]
