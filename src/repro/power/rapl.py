"""RAPL (running average power limiting) energy accounting (Section IV).

Two backends reproduce the paper's central RAPL finding:

* :class:`MeasuredRaplBackend` — Haswell-EP: FIVR current sensing makes
  RAPL an actual *measurement*; the accumulated energy equals the ground
  truth (plus quantization to the energy unit and the ~1 ms register
  update period).
* :class:`ModeledRaplBackend` — Sandy Bridge-EP: RAPL was a *model*
  driven by event counters, with a workload-dependent bias. The backend
  scales true energy by the bias factor of whatever is executing, which
  recreates the per-workload branches of Fig. 2a.

Haswell-EP specifics the paper documents are enforced here: the PP0
(core) domain is not supported; the DRAM domain must be read with the
15.3 uJ energy unit (DRAM mode 1) rather than the generic unit of the
SDM — configuring mode 0 yields the "unreasonably high values" the paper
warns about; counters are 32-bit and wrap.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

from repro.errors import UnsupportedFeatureError, ConfigurationError
from repro.specs.cpu import CpuSpec


class RaplDomain(enum.Enum):
    PACKAGE = "package"
    DRAM = "dram"
    PP0 = "pp0"

    # Identity hash (consistent with enum identity-equality): the
    # accumulation path hits the per-domain dicts on every integration
    # segment, and the Python-level Enum.__hash__ shows up there.
    __hash__ = object.__hash__


class DramRaplMode(enum.Enum):
    """BIOS-selectable DRAM RAPL mode. Haswell-EP supports only mode 1."""

    MODE0 = 0
    MODE1 = 1


_COUNTER_BITS = 32
_COUNTER_WRAP = 1 << _COUNTER_BITS


class MeasuredRaplBackend:
    """FIVR-based energy measurement: accumulates ground-truth joules."""

    def accumulate(self, true_joules: float, bias: float) -> float:
        return true_joules


class ModeledRaplBackend:
    """Pre-Haswell event-counter model: workload-biased estimate."""

    def accumulate(self, true_joules: float, bias: float) -> float:
        return true_joules * bias


@dataclass
class RaplBank:
    """The RAPL MSR bank of one socket."""

    spec: CpuSpec
    backend: MeasuredRaplBackend | ModeledRaplBackend
    dram_mode: DramRaplMode = DramRaplMode.MODE1
    # continuously integrated energy (J) per domain
    _energy_j: dict[RaplDomain, float] = field(default_factory=dict)
    # snapshot visible through the MSR, refreshed every ~1 ms
    _visible_j: dict[RaplDomain, float] = field(default_factory=dict)
    # raw-counter skew (counts) per domain — fault injection shifts the
    # 32-bit counter's phase so a wrap lands at a chosen instant without
    # perturbing the true accumulated energy
    _counter_skew: dict[RaplDomain, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        domains = [RaplDomain.PACKAGE, RaplDomain.DRAM]
        if self.spec.has_pp0_rapl:
            domains.append(RaplDomain.PP0)
        self._energy_j = {d: 0.0 for d in domains}
        self._visible_j = {d: 0.0 for d in domains}
        if (self.dram_mode is DramRaplMode.MODE0
                and self.spec.rapl_dram_energy_unit_j not in (0.0,)
                and self.spec.microarch.codename == "haswell-ep"):
            # Allowed (a BIOS may still offer it) but behaviour is wrong;
            # reads will use the generic unit. See read_energy_j().
            pass

    # ---- accumulation (called from the socket integrator) -------------------

    def accumulate(self, domain: RaplDomain, true_joules: float,
                   bias: float = 1.0) -> None:
        if domain not in self._energy_j:
            raise UnsupportedFeatureError(
                f"RAPL domain {domain.value} not supported on {self.spec.model}")
        self._energy_j[domain] += self.backend.accumulate(true_joules, bias)

    def accumulate_pkg_dram(self, pkg_joules: float, dram_joules: float,
                            bias: float) -> None:
        """Fused hot-path accumulate for the two always-present domains.

        The socket integrator credits PACKAGE and DRAM on every segment;
        both domains exist on every supported part (only PP0 varies), so
        this skips the per-call membership check of :meth:`accumulate`.
        """
        acc = self.backend.accumulate
        energy = self._energy_j
        energy[RaplDomain.PACKAGE] += acc(pkg_joules, bias)
        energy[RaplDomain.DRAM] += acc(dram_joules, bias)

    def refresh(self) -> None:
        """Latch accumulated energy into the visible MSR snapshot.

        Hardware updates the energy-status MSRs roughly once per
        millisecond; the node schedules this at
        ``spec.rapl_update_period_ns``.
        """
        for domain, value in self._energy_j.items():
            self._visible_j[domain] = value

    # ---- units ------------------------------------------------------------------

    def energy_unit_j(self, domain: RaplDomain) -> float:
        """The unit a *correct* reader must apply for ``domain``.

        On Haswell-EP the DRAM domain uses 15.3 uJ (Section IV, quoting
        the registers datasheet), not the generic unit from the SDM.
        """
        if domain is RaplDomain.DRAM and self.dram_mode is DramRaplMode.MODE1:
            unit = self.spec.rapl_dram_energy_unit_j
        else:
            unit = self.spec.rapl_energy_unit_j
        if unit <= 0.0:
            raise UnsupportedFeatureError(
                f"{self.spec.model} has no RAPL energy unit for {domain.value}")
        return unit

    # ---- reads --------------------------------------------------------------------

    def read_counter(self, domain: RaplDomain) -> int:
        """Raw 32-bit energy-status counter (wraps)."""
        if domain not in self._visible_j:
            raise UnsupportedFeatureError(
                f"RAPL domain {domain.value} not supported on {self.spec.model}")
        unit = self.energy_unit_j(domain)
        skew = self._counter_skew.get(domain, 0)
        return (int(self._visible_j[domain] / unit) + skew) % _COUNTER_WRAP

    # ---- fault injection ----------------------------------------------------

    def force_wrap(self, domain: RaplDomain, margin_counts: int = 0) -> int:
        """Skew the counter so it wraps after ``margin_counts`` more counts.

        Models the 32-bit counter being caught near its wrap point
        mid-measurement. Only the raw counter phase changes — the true
        accumulated energy is untouched, so wrap-aware readers
        (:func:`wraparound_delta`) still recover exact deltas while naive
        ``after - before`` subtraction goes hugely negative. Returns the
        skewed counter value.
        """
        if not 0 <= margin_counts < _COUNTER_WRAP:
            raise ConfigurationError(
                f"wrap margin must be in [0, 2^32), got {margin_counts}")
        current = self.read_counter(domain)
        target = (_COUNTER_WRAP - margin_counts) % _COUNTER_WRAP
        self._counter_skew[domain] = (
            self._counter_skew.get(domain, 0) + target - current)
        return self.read_counter(domain)

    def read_energy_j(self, domain: RaplDomain,
                      assumed_unit_j: float | None = None) -> float:
        """Counter scaled by an energy unit, as software would compute it.

        ``assumed_unit_j`` lets callers reproduce the misconfiguration the
        paper warns about: scaling the Haswell DRAM counter with the
        generic SDM unit produces values ~4x too high.
        """
        unit = assumed_unit_j if assumed_unit_j is not None \
            else self.energy_unit_j(domain)
        if unit <= 0.0:
            raise ConfigurationError("energy unit must be positive")
        return self.read_counter(domain) * unit

    def true_energy_j(self, domain: RaplDomain) -> float:
        """Unquantized accumulated energy (test/analysis convenience)."""
        if domain not in self._energy_j:
            raise UnsupportedFeatureError(
                f"RAPL domain {domain.value} not supported on {self.spec.model}")
        return self._energy_j[domain]


def wraparound_delta(counter_before: int, counter_after: int) -> int:
    """Counter difference accounting for 32-bit wrap (at most one wrap)."""
    delta = counter_after - counter_before
    if delta < 0:
        delta += _COUNTER_WRAP
    return delta


def unit_exponent(unit_j: float) -> int:
    """The SDM ``1/2^n`` exponent closest to a given energy unit."""
    return round(-math.log2(unit_j))
