"""The rule engine: registry, per-file visitor dispatch, suppressions.

One AST walk per file; every registered rule declares the node types it
wants and receives them through :meth:`Rule.visit`. Findings carry
``path:line:col``, a stable rule id, and a fix hint. Suppressions are
inline comments::

    # repro-lint: disable=det-wallclock — harness timeout, not simulator state

A suppression **must** carry a justification after an em dash (or
``--``); one without a reason is itself a finding (rule
``suppression``). ``disable-file=`` on any line suppresses a rule for
the whole file. Path allowlists live in ``pyproject.toml`` under
``[tool.repro-lint]``; see ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*(disable|disable-file)=([\w,\-]+)"
    r"(?:\s*(?:—|--)\s*(?P<reason>\S.*))?")

#: Rule id of the meta-finding for unjustified suppressions.
SUPPRESSION_RULE = "suppression"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``repro-lint: disable`` comment.

    A trailing comment suppresses its own line; a comment that is the
    whole line suppresses the line below it (like ``# noqa`` vs a
    block-style pragma), so justifications can stay under the line
    length limit.
    """

    line: int
    rules: frozenset[str]
    file_wide: bool
    reason: str | None
    standalone: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rules and "all" not in self.rules:
            return False
        if self.file_wide:
            return True
        return finding.line == self.line \
            or (self.standalone and finding.line == self.line + 1)


class FileContext:
    """Everything a rule may want to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        # import alias resolution: name -> dotted origin.
        #   ``import numpy as np``        -> modules["np"] = "numpy"
        #   ``from time import monotonic`` -> names["monotonic"] = "time.monotonic"
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve(self, func: ast.expr) -> str | None:
        """Dotted origin of a callable expression, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a bare ``monotonic`` resolves to
        ``time.monotonic`` under ``from time import monotonic``.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        base = node.id
        if base in self.names:
            return ".".join([self.names[base], *parts])
        if base in self.modules:
            return ".".join([self.modules[base], *parts])
        return None


class Rule:
    """Base class: subclass, set the class attributes, register."""

    id: str = ""
    description: str = ""
    hint: str = ""
    #: AST node types dispatched to :meth:`visit` (empty = none).
    node_types: tuple[type, ...] = ()

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Whole-file checks run before the node walk."""
        return ()

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                rule_id: str | None = None, hint: str | None = None) -> Finding:
        return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule_id or self.id, message=message,
                       hint=self.hint if hint is None else hint)


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``id``) to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    return dict(_REGISTRY)


# ---- configuration ----------------------------------------------------------

@dataclass
class LintConfig:
    """``[tool.repro-lint]`` from pyproject.toml."""

    #: directories/files linted when the CLI gets no path arguments
    paths: list[str] = field(default_factory=lambda: [
        "src", "scripts", "benchmarks", "examples"])
    #: path fragments excluded everywhere (matched against posix paths)
    exclude: list[str] = field(default_factory=list)
    #: rule id -> path globs where the rule does not apply
    allow: dict[str, list[str]] = field(default_factory=dict)

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return cls()
        try:
            import tomllib
        except ImportError:          # python < 3.11: run with defaults
            return cls()
        table = tomllib.loads(pyproject.read_text()) \
            .get("tool", {}).get("repro-lint", {})
        config = cls()
        config.paths = list(table.get("paths", config.paths))
        config.exclude = list(table.get("exclude", config.exclude))
        config.allow = {rule: list(globs)
                        for rule, globs in table.get("allow", {}).items()}
        return config

    def excluded(self, rel_path: str) -> bool:
        return any(fragment in rel_path for fragment in self.exclude)

    def allowed(self, rule_id: str, rel_path: str) -> bool:
        """True when the rule is switched off for this path."""
        path = Path(rel_path)
        return any(path.match(glob) or fragment_match(glob, rel_path)
                   for glob in self.allow.get(rule_id, ()))


def fragment_match(glob: str, rel_path: str) -> bool:
    """A glob without wildcards also matches as a plain path fragment."""
    return not any(ch in glob for ch in "*?[") and glob in rel_path


# ---- suppressions -----------------------------------------------------------

def parse_suppressions(source: str, path: str) -> \
        tuple[list[Suppression], list[Finding]]:
    """Extract suppression comments (COMMENT tokens only, so strings
    that merely mention the syntax are inert)."""
    found: list[Suppression] = []
    meta: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenizeError:
        comments = []
    source_lines = source.splitlines()
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        file_wide = match.group(1) == "disable-file"
        rules = frozenset(r.strip() for r in match.group(2).split(",")
                          if r.strip())
        reason = match.group("reason")
        line_text = source_lines[line - 1] if line <= len(source_lines) else ""
        found.append(Suppression(line=line, rules=rules,
                                 file_wide=file_wide, reason=reason,
                                 standalone=line_text.lstrip()
                                 .startswith("#")))
        if not reason:
            meta.append(Finding(
                path=path, line=line, col=0, rule=SUPPRESSION_RULE,
                message=f"suppression of {', '.join(sorted(rules))} has no "
                        "justification",
                hint="append ' — <reason>' to the disable comment"))
    return found, meta


# ---- the engine -------------------------------------------------------------

def lint_source(source: str, path: str,
                rules: dict[str, Rule] | None = None,
                config: LintConfig | None = None) -> list[Finding]:
    """Lint one file's source text; returns surviving findings sorted."""
    rules = rules if rules is not None else all_rules()
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(path=path, line=exc.lineno or 1, col=0,
                        rule="parse-error", message=f"syntax error: {exc.msg}")]
    ctx = FileContext(path=path, source=source, tree=tree)

    active = {rule_id: rule for rule_id, rule in rules.items()
              if not config.allowed(rule_id, path)}
    findings: list[Finding] = []
    for rule in active.values():
        findings.extend(rule.begin_file(ctx))
    dispatch = [(rule, rule.node_types) for rule in active.values()
                if rule.node_types]
    for node in ast.walk(tree):
        for rule, node_types in dispatch:
            if isinstance(node, node_types):
                findings.extend(rule.visit(ctx, node))

    suppressions, meta = parse_suppressions(source, path)
    kept = [f for f in findings
            if not any(s.covers(f) for s in suppressions)]
    kept.extend(m for m in meta
                if not config.allowed(SUPPRESSION_RULE, path))
    return sorted(kept, key=lambda f: f.sort_key)


def iter_python_files(paths: Iterable[str | Path],
                      config: LintConfig, root: Path) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            rel = _rel(candidate, root)
            if not config.excluded(rel):
                yield candidate


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Iterable[str | Path] | None = None,
               root: Path | None = None,
               rules: dict[str, Rule] | None = None,
               config: LintConfig | None = None) -> list[Finding]:
    """Lint files/directories (default: the configured paths)."""
    root = Path(root) if root is not None else Path.cwd()
    config = config if config is not None else LintConfig.load(root)
    findings: list[Finding] = []
    for file_path in iter_python_files(paths or config.paths, config, root):
        findings.extend(lint_source(file_path.read_text(),
                                    _rel(file_path, root),
                                    rules=rules, config=config))
    return sorted(findings, key=lambda f: f.sort_key)
