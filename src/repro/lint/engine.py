"""The rule engine: registries, per-file dispatch, config, suppressions.

Linting is two-phase (see :mod:`repro.lint.project`): phase 1 parses
and tokenizes every module exactly once, building per-module fact
summaries and the shared project index; phase 2 runs two kinds of
rules over it:

* :class:`Rule` — per-file rules: one AST walk per file, each rule
  declares the node types it wants and receives them through
  :meth:`Rule.visit`;
* :class:`ProjectRule` — cross-file rules: receive the whole
  :class:`~repro.lint.project.ProjectIndex` (import graph, call
  summaries, async/executor/RNG facts) and may relate any module to
  any other.

Findings carry ``path:line:col``, a stable rule id, and a fix hint.
Suppressions are inline comments::

    # repro-lint: disable=det-wallclock — harness timeout, not simulator state

A suppression **must** carry a justification after an em dash (or
``--``); one without a reason is itself a finding (rule
``suppression``). ``disable-file=`` on any line suppresses a rule for
the whole file. Path allowlists, the architecture layer map, and the
seed-flow/sim-core configuration live in ``pyproject.toml`` under
``[tool.repro-lint]``; see ``docs/static_analysis.md``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*(disable|disable-file)=([\w,\-]+)"
    r"(?:\s*(?:—|--)\s*(?P<reason>\S.*))?")

#: Rule id of the meta-finding for unjustified suppressions.
SUPPRESSION_RULE = "suppression"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str
    hint: str = ""

    def render(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.rule}: " \
               f"{self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text

    @property
    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Suppression:
    """A parsed ``repro-lint: disable`` comment.

    A trailing comment suppresses its own line; a comment that is the
    whole line suppresses the line below it (like ``# noqa`` vs a
    block-style pragma), so justifications can stay under the line
    length limit.
    """

    line: int
    rules: frozenset[str]
    file_wide: bool
    reason: str | None
    standalone: bool = False

    def covers(self, finding: Finding) -> bool:
        if finding.rule not in self.rules and "all" not in self.rules:
            return False
        if self.file_wide:
            return True
        return finding.line == self.line \
            or (self.standalone and finding.line == self.line + 1)


class FileContext:
    """Everything a rule may want to know about one file."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        # import alias resolution: name -> dotted origin.
        #   ``import numpy as np``        -> modules["np"] = "numpy"
        #   ``from time import monotonic`` -> names["monotonic"] = "time.monotonic"
        self.modules: dict[str, str] = {}
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name if alias.asname else alias.name.split(".")[0]
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = \
                        f"{node.module}.{alias.name}"

    def resolve(self, func: ast.expr) -> str | None:
        """Dotted origin of a callable expression, or None.

        ``np.random.rand`` resolves to ``numpy.random.rand`` under
        ``import numpy as np``; a bare ``monotonic`` resolves to
        ``time.monotonic`` under ``from time import monotonic``.
        """
        parts: list[str] = []
        node = func
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.reverse()
        base = node.id
        if base in self.names:
            return ".".join([self.names[base], *parts])
        if base in self.modules:
            return ".".join([self.modules[base], *parts])
        return None


class Rule:
    """Base class: subclass, set the class attributes, register."""

    id: str = ""
    description: str = ""
    hint: str = ""
    #: AST node types dispatched to :meth:`visit` (empty = none).
    node_types: tuple[type, ...] = ()

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        """Whole-file checks run before the node walk."""
        return ()

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                rule_id: str | None = None, hint: str | None = None) -> Finding:
        return Finding(path=ctx.path, line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       rule=rule_id or self.id, message=message,
                       hint=self.hint if hint is None else hint)


class ProjectRule:
    """Base class for cross-file rules (phase 2).

    A project rule sees the whole :class:`~repro.lint.project.ProjectIndex`
    at once instead of one file at a time, so it can walk the import
    graph, follow interprocedural call summaries, or compare modules
    against each other. ``id`` is the *family* id; a rule may emit
    findings under several ids (list them in ``ids`` so ``--select``
    and allowlists know about all of them).
    """

    id: str = ""
    description: str = ""
    hint: str = ""
    #: every finding id this rule can emit (defaults to just ``id``).
    ids: tuple[str, ...] = ()

    def check_project(self, index, config: "LintConfig") -> Iterable[Finding]:
        """Yield findings over the whole project index."""
        return ()

    def all_ids(self) -> tuple[str, ...]:
        return self.ids or (self.id,)

    def finding(self, path: str, line: int, message: str,
                rule_id: str | None = None, hint: str | None = None,
                col: int = 0) -> Finding:
        return Finding(path=path, line=line, col=col,
                       rule=rule_id or self.id, message=message,
                       hint=self.hint if hint is None else hint)


_REGISTRY: dict[str, Rule] = {}
_PROJECT_REGISTRY: dict[str, ProjectRule] = {}


def register(rule_cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by its ``id``) to the registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule_cls


def register_project(rule_cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding a project rule to the phase-2 registry."""
    rule = rule_cls()
    if not rule.id:
        raise ValueError(f"{rule_cls.__name__} has no rule id")
    if rule.id in _PROJECT_REGISTRY or rule.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule.id!r}")
    _PROJECT_REGISTRY[rule.id] = rule
    return rule_cls


def all_rules() -> dict[str, Rule]:
    return dict(_REGISTRY)


def all_project_rules() -> dict[str, ProjectRule]:
    return dict(_PROJECT_REGISTRY)


def all_rule_ids() -> set[str]:
    """Every selectable finding id across both registries."""
    ids = set(_REGISTRY)
    for rule in _PROJECT_REGISTRY.values():
        ids.update(rule.all_ids())
    return ids


# ---- configuration ----------------------------------------------------------

@dataclass
class LintConfig:
    """``[tool.repro-lint]`` from pyproject.toml."""

    #: directories/files linted when the CLI gets no path arguments
    paths: list[str] = field(default_factory=lambda: [
        "src", "scripts", "benchmarks", "examples"])
    #: path fragments excluded everywhere (matched against posix paths)
    exclude: list[str] = field(default_factory=list)
    #: rule id -> path globs where the rule does not apply
    allow: dict[str, list[str]] = field(default_factory=dict)
    #: architecture layer map, lowest first: (layer name, package
    #: prefixes). A module belongs to the first layer whose prefix
    #: matches. Empty = arch-layering disabled.
    layers: list[tuple[str, tuple[str, ...]]] = field(default_factory=list)
    #: package prefixes forming the deterministic simulation core: no
    #: module here may (transitively, at import time) reach asyncio or
    #: wall-clock code. Empty = arch-sim-reach disabled.
    sim_core: list[str] = field(default_factory=list)
    #: module prefixes housing the blessed seeded-RNG factories; calls
    #: to ``default_rng``/``Random`` *inside* them are the sanctioned
    #: roots, everywhere else they are det-seed-flow findings.
    rng_factories: list[str] = field(
        default_factory=lambda: ["repro.engine.rng"])
    #: function names (within the factory modules) whose return value
    #: counts as a blessed, plan-seeded generator.
    rng_factory_functions: list[str] = field(
        default_factory=lambda: ["make_rng", "spawn_rng"])
    #: committed-baseline file, relative to the repo root.
    baseline: str = "lint-baseline.json"
    #: phase-1 fact cache directory, relative to the repo root.
    cache_dir: str = ".lint_cache"

    @classmethod
    def load(cls, root: Path) -> "LintConfig":
        pyproject = root / "pyproject.toml"
        if not pyproject.is_file():
            return cls()
        try:
            import tomllib
        except ImportError:          # python < 3.11: run with defaults
            return cls()
        table = tomllib.loads(pyproject.read_text()) \
            .get("tool", {}).get("repro-lint", {})
        config = cls()
        config.paths = list(table.get("paths", config.paths))
        config.exclude = list(table.get("exclude", config.exclude))
        config.allow = {rule: list(globs)
                        for rule, globs in table.get("allow", {}).items()}
        config.layers = [(str(entry.get("name", f"layer{i}")),
                          tuple(entry.get("packages", ())))
                         for i, entry in enumerate(table.get("layer", []))]
        config.sim_core = list(table.get("sim-core", config.sim_core))
        config.rng_factories = list(
            table.get("rng-factories", config.rng_factories))
        config.rng_factory_functions = list(
            table.get("rng-factory-functions", config.rng_factory_functions))
        config.baseline = str(table.get("baseline", config.baseline))
        config.cache_dir = str(table.get("cache-dir", config.cache_dir))
        return config

    def layer_of(self, module: str) -> tuple[int, str] | None:
        """(index, name) of the layer owning a dotted module, or None."""
        for index, (name, packages) in enumerate(self.layers):
            for package in packages:
                if module == package or module.startswith(package + "."):
                    return (index, name)
        return None

    def in_sim_core(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in self.sim_core)

    def is_rng_factory(self, module: str) -> bool:
        return any(module == p or module.startswith(p + ".")
                   for p in self.rng_factories)

    def excluded(self, rel_path: str) -> bool:
        return any(fragment in rel_path for fragment in self.exclude)

    def allowed(self, rule_id: str, rel_path: str) -> bool:
        """True when the rule is switched off for this path."""
        path = Path(rel_path)
        return any(path.match(glob) or fragment_match(glob, rel_path)
                   for glob in self.allow.get(rule_id, ()))


def fragment_match(glob: str, rel_path: str) -> bool:
    """A glob without wildcards also matches as a plain path fragment."""
    return not any(ch in glob for ch in "*?[") and glob in rel_path


# ---- suppressions -----------------------------------------------------------

def parse_suppressions(source: str, path: str) -> \
        tuple[list[Suppression], list[Finding]]:
    """Extract suppression comments (COMMENT tokens only, so strings
    that merely mention the syntax are inert)."""
    found: list[Suppression] = []
    meta: list[Finding] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except tokenize.TokenizeError:
        comments = []
    source_lines = source.splitlines()
    for line, text in comments:
        match = _SUPPRESS_RE.search(text)
        if not match:
            continue
        file_wide = match.group(1) == "disable-file"
        rules = frozenset(r.strip() for r in match.group(2).split(",")
                          if r.strip())
        reason = match.group("reason")
        line_text = source_lines[line - 1] if line <= len(source_lines) else ""
        found.append(Suppression(line=line, rules=rules,
                                 file_wide=file_wide, reason=reason,
                                 standalone=line_text.lstrip()
                                 .startswith("#")))
        if not reason:
            meta.append(Finding(
                path=path, line=line, col=0, rule=SUPPRESSION_RULE,
                message=f"suppression of {', '.join(sorted(rules))} has no "
                        "justification",
                hint="append ' — <reason>' to the disable comment"))
    return found, meta


# ---- per-file rule execution (phase 1 helper) -------------------------------

def run_file_rules(ctx: FileContext,
                   rules: dict[str, Rule]) -> list[Finding]:
    """One AST walk of one file through every per-file rule.

    Pure with respect to configuration: allowlists and suppressions are
    applied later, so the result is cacheable per (source, rules).
    """
    findings: list[Finding] = []
    for rule in rules.values():
        findings.extend(rule.begin_file(ctx))
    dispatch = [(rule, rule.node_types) for rule in rules.values()
                if rule.node_types]
    for node in ast.walk(ctx.tree):
        for rule, node_types in dispatch:
            if isinstance(node, node_types):
                findings.extend(rule.visit(ctx, node))
    return findings


def lint_source(source: str, path: str,
                rules: dict[str, Rule] | None = None,
                config: LintConfig | None = None) -> list[Finding]:
    """Lint one file's source text; returns surviving findings sorted.

    The file is treated as a one-module project, so per-file rules and
    every project rule that can operate without cross-file context
    (seed-flow creation checks, async safety) still apply.
    """
    from repro.lint.project import lint_single_source
    return lint_single_source(source, path, rules=rules, config=config)


def iter_python_files(paths: Iterable[str | Path],
                      config: LintConfig, root: Path) -> Iterator[Path]:
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            continue
        for candidate in candidates:
            rel = _rel(candidate, root)
            if not config.excluded(rel):
                yield candidate


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(paths: Iterable[str | Path] | None = None,
               root: Path | None = None,
               rules: dict[str, Rule] | None = None,
               config: LintConfig | None = None,
               project_rules: dict[str, ProjectRule] | None = None,
               use_cache: bool = False) -> list[Finding]:
    """Two-phase lint of files/directories (default: configured paths)."""
    from repro.lint.project import lint_project
    findings, _index = lint_project(paths, root=root, rules=rules,
                                    project_rules=project_rules,
                                    config=config, use_cache=use_cache)
    return findings
