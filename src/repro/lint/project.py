"""Phase 1 of the two-phase engine: parse once, summarize everything.

Every module under the configured paths is parsed and tokenized exactly
once.  The single pass produces a :class:`ModuleFacts` record holding

* the import table (module-level vs deferred vs ``TYPE_CHECKING``),
* one :class:`FunctionFact` per function — resolved call sites,
  blocking-call and file-I/O facts, ``asyncio`` task creations,
  condition wait/notify sites, executor submissions, RNG creations and
  RNG-valued argument flows, return-value classifications,
* the suppression table (this is the **only** tokenize pass a module
  ever gets — per-file findings, project findings and the meta
  ``suppression`` rule all consume the same parsed table),
* the per-file rule findings (config-independent, so cacheable).

:class:`ProjectIndex` assembles the records into the shared cross-file
structures: dotted-name resolution, the internal import graph, and the
project call graph.  Phase 2 (:class:`~repro.lint.engine.ProjectRule`)
runs over the index only — it never re-reads or re-parses a file.

Facts are JSON-serializable and cached per source file under
``.lint_cache/`` keyed on ``(source sha256, engine signature)``; the
engine signature hashes every file of :mod:`repro.lint`, so editing any
rule invalidates the cache wholesale.  A warm ``make lint`` therefore
skips phase 1 entirely.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable

from repro.lint.engine import (
    SUPPRESSION_RULE,
    FileContext,
    Finding,
    LintConfig,
    ProjectRule,
    Rule,
    Suppression,
    all_project_rules,
    all_rules,
    iter_python_files,
    parse_suppressions,
    run_file_rules,
)

#: Wall-clock call origins (shared with the det-wallclock rule).
WALLCLOCK_ORIGINS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "time.process_time_ns", "time.sleep", "time.strftime", "time.localtime",
    "time.gmtime", "time.ctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "asyncio.sleep",
})

#: Ambient (unseeded / host-entropy) RNG constructors and draw sites.
AMBIENT_RNG_EXACT = frozenset({
    "os.urandom", "uuid.uuid4", "uuid.uuid1",
    "numpy.random.default_rng", "random.Random", "random.SystemRandom",
})
AMBIENT_RNG_PREFIXES = ("random.", "numpy.random.", "secrets.")

#: Calls that block the thread they run on (and so the event loop).
BLOCKING_ORIGINS = frozenset({
    "time.sleep",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "os.system", "os.waitpid", "os.wait",
    "socket.create_connection", "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.request",
})

#: Method names that read/write files (flagged in async code when the
#: call sits inside a loop — one blocking stat is noise, a loop is not).
FILE_IO_ATTRS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
})

_RNG_PARAM_RE = re.compile(r"(^|_)rng$")


# ---- facts ------------------------------------------------------------------

@dataclass
class CallFact:
    """One call site, with its callee resolved as far as phase 1 can.

    ``callee`` is a dotted origin (``repro.faults.chaos.maybe_arm``),
    ``local:<name>`` for a bare name, ``self:<name>`` for a method call
    on ``self``, or ``?`` when unresolvable.
    """

    callee: str
    lineno: int


@dataclass
class BlockingFact:
    origin: str                 # dotted origin, or "file-io:<attr>"
    lineno: int
    in_loop: bool


@dataclass
class TaskFact:
    origin: str                 # asyncio.create_task / ensure_future / ...
    lineno: int
    discarded: bool             # expression statement: nothing holds it


@dataclass
class CondFact:
    receiver: str               # dotted receiver repr, e.g. "job.cond"
    op: str                     # wait | wait_for | notify | notify_all
    lineno: int
    guarded: bool               # lexically inside `async with <receiver>`


@dataclass
class SubmitFact:
    api: str                    # submit | run_in_executor | map
    executor: str               # process | thread | unknown
    callable_kind: str          # lambda | nested | module | method | unknown
    callable_name: str
    lineno: int


@dataclass
class RngCreateFact:
    origin: str
    lineno: int


@dataclass
class ArgFact:
    """One non-trivial argument flowing into a call (for taint)."""

    callee: str                 # as in CallFact
    param: str                  # keyword name, or "#<index>" positional
    source: str                 # classification, see _classify_expr
    lineno: int


@dataclass
class FunctionFact:
    qualname: str               # "<module>", "f", "Cls.m", "f.<locals>.g"
    lineno: int
    is_async: bool
    nested: bool
    params: tuple[str, ...] = ()
    calls: list[CallFact] = field(default_factory=list)
    blocking: list[BlockingFact] = field(default_factory=list)
    tasks: list[TaskFact] = field(default_factory=list)
    conds: list[CondFact] = field(default_factory=list)
    submits: list[SubmitFact] = field(default_factory=list)
    rng_creates: list[RngCreateFact] = field(default_factory=list)
    args: list[ArgFact] = field(default_factory=list)
    returns: list[str] = field(default_factory=list)  # classifications
    future_results: list[int] = field(default_factory=list)  # linenos


@dataclass
class ImportFact:
    target: str                 # dotted module as resolvable
    lineno: int
    scope: str                  # toplevel | deferred | typing


@dataclass
class ModuleFacts:
    """Everything phase 2 may want to know about one module."""

    path: str                   # repo-relative posix path
    module: str                 # dotted name ("repro.engine.rng")
    sha: str                    # sha256 of the source
    imports: list[ImportFact] = field(default_factory=list)
    functions: dict[str, FunctionFact] = field(default_factory=dict)
    condition_names: list[str] = field(default_factory=list)
    file_findings: list[Finding] = field(default_factory=list)
    suppressions: list[Suppression] = field(default_factory=list)
    suppression_meta: list[Finding] = field(default_factory=list)
    has_wallclock: bool = False
    imports_asyncio: bool = False
    parse_error: bool = False

    def toplevel_imports(self) -> list[ImportFact]:
        return [imp for imp in self.imports if imp.scope == "toplevel"]


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/engine/rng.py`` -> ``repro.engine.rng`` (the ``src``
    layout root is stripped); ``scripts/run_paper.py`` ->
    ``scripts.run_paper``; package ``__init__`` files name the package.
    """
    parts = list(Path(rel_path).with_suffix("").parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or rel_path


# ---- extraction -------------------------------------------------------------

class _Frame:
    """Per-function extraction state."""

    def __init__(self, fact: FunctionFact) -> None:
        self.fact = fact
        self.loop_depth = 0
        self.async_with: list[str] = []     # dotted receiver reprs
        self.var_sources: dict[str, str] = {}
        self.local_defs: set[str] = set()


def _dotted(node: ast.expr) -> str | None:
    """Dotted source repr of a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _FactsExtractor(ast.NodeVisitor):
    """One walk of one module's AST collecting every phase-2 fact."""

    def __init__(self, ctx: FileContext, facts: ModuleFacts) -> None:
        self.ctx = ctx
        self.facts = facts
        module_fact = FunctionFact(qualname="<module>", lineno=0,
                                   is_async=False, nested=False)
        facts.functions["<module>"] = module_fact
        self._frames: list[_Frame] = [_Frame(module_fact)]
        self._class_stack: list[str] = []
        self._seen_task_calls: set[int] = set()

    @property
    def _frame(self) -> _Frame:
        return self._frames[-1]

    # -- imports ----------------------------------------------------------

    def _import_scope(self) -> str:
        return "toplevel" if len(self._frames) == 1 else "deferred"

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(ImportFact(
                target=alias.name, lineno=node.lineno,
                scope=self._import_scope()))
            if alias.name.split(".")[0] == "asyncio" \
                    and self._import_scope() == "toplevel":
                self.facts.imports_asyncio = True

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return          # relative imports stay within their package
        scope = self._import_scope()
        for alias in node.names:
            self.facts.imports.append(ImportFact(
                target=f"{node.module}.{alias.name}", lineno=node.lineno,
                scope=scope))
        if node.module.split(".")[0] == "asyncio" and scope == "toplevel":
            self.facts.imports_asyncio = True

    def visit_If(self, node: ast.If) -> None:
        # `if TYPE_CHECKING:` bodies are annotation-only: re-tag their
        # imports so the layer rules skip them.
        if "TYPE_CHECKING" in ast.dump(node.test):
            before = len(self.facts.imports)
            for child in node.body:
                self.visit(child)
            for imp in self.facts.imports[before:]:
                imp.scope = "typing"
            for child in node.orelse:
                self.visit(child)
            return
        self.generic_visit(node)

    # -- scopes -----------------------------------------------------------

    def _enter_function(self, node, is_async: bool) -> None:
        parent = self._frame.fact
        if parent.qualname == "<module>":
            qualname = ".".join([*self._class_stack, node.name])
            nested = False
        else:
            qualname = f"{parent.qualname}.<locals>.{node.name}"
            nested = True
            self._frame.local_defs.add(node.name)
        args = node.args
        params = tuple(a.arg for a in (*args.posonlyargs, *args.args,
                                       *args.kwonlyargs))
        fact = FunctionFact(qualname=qualname, lineno=node.lineno,
                            is_async=is_async, nested=nested, params=params)
        self.facts.functions[qualname] = fact
        self._frames.append(_Frame(fact))
        for child in node.body:
            self.visit(child)
        self._frames.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_function(node, is_async=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        for child in node.body:
            self.visit(child)
        self._class_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return      # classified at the call site that receives it

    # -- loops / async with ----------------------------------------------

    def _visit_loop(self, node) -> None:
        self._frame.loop_depth += 1
        self.generic_visit(node)
        self._frame.loop_depth -= 1

    visit_For = visit_While = visit_AsyncFor = _visit_loop

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        receivers = [r for item in node.items
                     if (r := _dotted(item.context_expr)) is not None]
        self._frame.async_with.extend(receivers)
        self.generic_visit(node)
        del self._frame.async_with[len(self._frame.async_with)
                                   - len(receivers):]

    # -- statements feeding classification --------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_condition_binding(node.targets, node.value)
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self._frame.var_sources[node.targets[0].id] = \
                self._classify_expr(node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_condition_binding([node.target], node.value)
            if isinstance(node.target, ast.Name):
                self._frame.var_sources[node.target.id] = \
                    self._classify_expr(node.value)
        self.generic_visit(node)

    def _record_condition_binding(self, targets: list[ast.expr],
                                  value: ast.expr) -> None:
        """Names/attributes bound to ``asyncio.Condition`` anywhere in
        the value expression (covers ``field(default_factory=...)``)."""
        bound = False
        for sub in ast.walk(value):
            if isinstance(sub, (ast.Name, ast.Attribute)) \
                    and self.ctx.resolve(sub) == "asyncio.Condition":
                bound = True
                break
        if not bound:
            return
        for target in targets:
            name = target.attr if isinstance(target, ast.Attribute) \
                else target.id if isinstance(target, ast.Name) else None
            if name and name not in self.facts.condition_names:
                self.facts.condition_names.append(name)

    def visit_Return(self, node: ast.Return) -> None:
        if node.value is not None:
            self._frame.fact.returns.append(self._classify_expr(node.value))
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call) \
                and self._task_origin(node.value) is not None:
            self._record_task(node.value, discarded=True)
        self.generic_visit(node)

    # -- calls ------------------------------------------------------------

    def _callee_key(self, func: ast.expr) -> str:
        origin = self.ctx.resolve(func)
        if origin is not None:
            return origin
        if isinstance(func, ast.Name):
            return f"local:{func.id}"
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "self":
            return f"self:{func.attr}"
        return "?"

    def _task_origin(self, node: ast.Call) -> str | None:
        origin = self.ctx.resolve(node.func)
        if origin in ("asyncio.create_task", "asyncio.ensure_future"):
            return origin
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "create_task" \
                and isinstance(func.value, ast.Name) \
                and "loop" in func.value.id.lower():
            return f"{func.value.id}.create_task"
        return None

    def _record_task(self, node: ast.Call, discarded: bool) -> None:
        if id(node) in self._seen_task_calls:
            return
        self._seen_task_calls.add(id(node))
        self._frame.fact.tasks.append(TaskFact(
            origin=self._task_origin(node) or "?", lineno=node.lineno,
            discarded=discarded))

    def _classify_expr(self, node: ast.expr) -> str:
        """Taint-relevant source classification of an expression."""
        if isinstance(node, ast.Await):
            return self._classify_expr(node.value)
        if isinstance(node, ast.Call):
            return f"call:{self._callee_key(node.func)}"
        if isinstance(node, ast.Name):
            frame = self._frame
            if node.id in frame.var_sources:
                return frame.var_sources[node.id]
            if node.id in frame.fact.params:
                return f"param:{node.id}"
            return "other"
        return "other"

    def visit_Call(self, node: ast.Call) -> None:
        fact = self._frame.fact
        key = self._callee_key(node.func)
        fact.calls.append(CallFact(callee=key, lineno=node.lineno))

        origin = self.ctx.resolve(node.func)
        if origin in WALLCLOCK_ORIGINS:
            self.facts.has_wallclock = True
        if origin in BLOCKING_ORIGINS:
            fact.blocking.append(BlockingFact(
                origin=origin, lineno=node.lineno,
                in_loop=self._frame.loop_depth > 0))
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in FILE_IO_ATTRS:
            fact.blocking.append(BlockingFact(
                origin=f"file-io:{func.attr}", lineno=node.lineno,
                in_loop=self._frame.loop_depth > 0))
        if isinstance(func, ast.Name) and func.id == "open":
            fact.blocking.append(BlockingFact(
                origin="file-io:open", lineno=node.lineno,
                in_loop=self._frame.loop_depth > 0))
        if isinstance(func, ast.Attribute) and func.attr == "result" \
                and not node.args and not node.keywords \
                and isinstance(func.value, ast.Name) \
                and "fut" in func.value.id.lower():
            fact.future_results.append(node.lineno)

        if self._task_origin(node) is not None:
            self._record_task(node, discarded=False)

        # condition operations
        if isinstance(func, ast.Attribute) \
                and func.attr in ("wait", "wait_for", "notify", "notify_all"):
            receiver = _dotted(func.value)
            if receiver is not None:
                fact.conds.append(CondFact(
                    receiver=receiver, op=func.attr, lineno=node.lineno,
                    guarded=receiver in self._frame.async_with))

        # executor submissions
        self._record_submit(node, origin)

        # RNG creations
        if origin is not None and (
                origin in AMBIENT_RNG_EXACT
                or origin.startswith(AMBIENT_RNG_PREFIXES)):
            fact.rng_creates.append(RngCreateFact(origin=origin,
                                                  lineno=node.lineno))

        # argument flows (taint): record classifiable sources only
        for index, arg in enumerate(node.args):
            source = self._classify_expr(arg)
            if source != "other":
                fact.args.append(ArgFact(callee=key, param=f"#{index}",
                                         source=source, lineno=node.lineno))
        for kw in node.keywords:
            if kw.arg is None:
                continue
            source = self._classify_expr(kw.value)
            if source != "other":
                fact.args.append(ArgFact(callee=key, param=kw.arg,
                                         source=source, lineno=node.lineno))

        self.generic_visit(node)

    # -- executor classification ------------------------------------------

    def _executor_kind(self, node: ast.expr) -> str:
        """process | thread | unknown for an executor expression."""
        if isinstance(node, ast.Constant) and node.value is None:
            return "thread"     # run_in_executor(None, ...) default pool
        origin = self.ctx.resolve(node)
        if origin is None and isinstance(node, ast.Call):
            origin = self.ctx.resolve(node.func)
        if origin is not None:
            if origin.endswith("ProcessPoolExecutor"):
                return "process"
            if origin.endswith("ThreadPoolExecutor"):
                return "thread"
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        if name is not None:
            source = self._lookup_binding(name)
            if source is not None:
                if source.endswith("ProcessPoolExecutor"):
                    return "process"
                if source.endswith("ThreadPoolExecutor"):
                    return "thread"
        return "unknown"

    def _lookup_binding(self, name: str) -> str | None:
        """Last ``call:`` source bound to ``name`` in any open frame,
        falling back to the module-wide executor binding table."""
        for frame in reversed(self._frames):
            source = frame.var_sources.get(name)
            if source is not None and source.startswith("call:"):
                return source[len("call:"):]
        return self._module_bindings.get(name)

    @property
    def _module_bindings(self) -> dict[str, str]:
        # attribute bindings (self._pool = ProcessPoolExecutor(...)) are
        # collected up front by analyze_module
        return getattr(self, "_attr_bindings", {})

    def _record_submit(self, node: ast.Call, origin: str | None) -> None:
        func = node.func
        api = None
        executor_expr: ast.expr | None = None
        callable_expr: ast.expr | None = None
        if isinstance(func, ast.Attribute) and func.attr in ("submit", "map"):
            api = func.attr
            executor_expr = func.value
            callable_expr = node.args[0] if node.args else None
        elif isinstance(func, ast.Attribute) \
                and func.attr == "run_in_executor" and len(node.args) >= 2:
            api = "run_in_executor"
            executor_expr = node.args[0]
            callable_expr = node.args[1]
        if api is None or callable_expr is None or executor_expr is None:
            return
        kind = self._executor_kind(executor_expr)
        if api in ("submit", "map") and kind == "unknown":
            return      # .submit()/.map() on arbitrary objects is not ours
        c_kind, c_name = self._classify_callable(callable_expr)
        self._frame.fact.submits.append(SubmitFact(
            api=api, executor=kind, callable_kind=c_kind,
            callable_name=c_name, lineno=node.lineno))

    def _classify_callable(self, node: ast.expr) -> tuple[str, str]:
        if isinstance(node, ast.Lambda):
            return "lambda", "<lambda>"
        if isinstance(node, ast.Call):
            origin = self.ctx.resolve(node.func)
            if origin in ("functools.partial", None) \
                    and isinstance(node.func, ast.Name) \
                    and node.func.id == "partial" and node.args:
                return self._classify_callable(node.args[0])
            if origin == "functools.partial" and node.args:
                return self._classify_callable(node.args[0])
            return "unknown", _dotted(node.func) or "?"
        if isinstance(node, ast.Name):
            for frame in reversed(self._frames[1:]):
                if node.id in frame.local_defs:
                    return "nested", node.id
            origin = self.ctx.resolve(node)
            return "module", origin or node.id
        if isinstance(node, ast.Attribute):
            if isinstance(node.value, ast.Name) and node.value.id == "self":
                return "method", f"self.{node.attr}"
            origin = self.ctx.resolve(node)
            if origin is not None:
                return "module", origin
            return "method", _dotted(node) or node.attr
        return "unknown", "?"


def _collect_attr_bindings(tree: ast.Module, ctx: FileContext) -> dict:
    """Module-wide ``<attr or name> -> constructor origin`` table for
    executor classification, covering ``self._pool =
    ProcessPoolExecutor(...)`` and ``with ProcessPoolExecutor() as
    pool:`` alike."""
    bindings: dict[str, str] = {}

    def record(targets: list[ast.expr], value: ast.expr) -> None:
        if not isinstance(value, ast.Call):
            return
        origin = ctx.resolve(value.func)
        if origin is None or not origin.endswith(("ProcessPoolExecutor",
                                                  "ThreadPoolExecutor")):
            return
        for target in targets:
            name = target.attr if isinstance(target, ast.Attribute) \
                else target.id if isinstance(target, ast.Name) else None
            if name:
                bindings[name] = origin

    for node in ast.walk(tree):
        if isinstance(node, ast.Assign):
            record(node.targets, node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            record([node.target], node.value)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if item.optional_vars is not None:
                    record([item.optional_vars], item.context_expr)
    return bindings


def analyze_module(source: str, path: str,
                   rules: dict[str, Rule] | None = None) -> ModuleFacts:
    """Phase 1 for one module: one parse, one walk, one tokenize pass."""
    rules = rules if rules is not None else all_rules()
    facts = ModuleFacts(path=path, module=module_name_for(path),
                        sha=hashlib.sha256(source.encode()).hexdigest())
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        facts.parse_error = True
        facts.file_findings.append(Finding(
            path=path, line=exc.lineno or 1, col=0, rule="parse-error",
            message=f"syntax error: {exc.msg}"))
        return facts
    ctx = FileContext(path=path, source=source, tree=tree)
    extractor = _FactsExtractor(ctx, facts)
    extractor._attr_bindings = _collect_attr_bindings(tree, ctx)
    extractor.visit(tree)
    facts.file_findings.extend(run_file_rules(ctx, rules))
    facts.suppressions, facts.suppression_meta = \
        parse_suppressions(source, path)
    return facts


# ---- the project index ------------------------------------------------------

class ProjectIndex:
    """Cross-file structures shared by every phase-2 rule."""

    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules: dict[str, ModuleFacts] = {}       # by path
        self.by_module: dict[str, str] = {}             # dotted -> path
        for facts in modules:
            self.modules[facts.path] = facts
            self.by_module[facts.module] = facts.path

    def resolve_internal(self, dotted: str) -> str | None:
        """Dotted name of the project module an import target lands in.

        ``from repro.system import node`` records target
        ``repro.system.node``; a ``from repro.system.node import Node``
        records ``repro.system.node.Node`` — walk prefixes outward
        until one names a module we indexed.
        """
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.by_module:
                return candidate
        return None

    def import_edges(self, scope: str = "toplevel") \
            -> dict[str, list[tuple[str, ImportFact]]]:
        """Internal import graph: module -> [(target module, fact)]."""
        graph: dict[str, list[tuple[str, ImportFact]]] = {}
        for facts in self.modules.values():
            edges = graph.setdefault(facts.module, [])
            for imp in facts.imports:
                if imp.scope != scope:
                    continue
                target = self.resolve_internal(imp.target)
                if target is not None and target != facts.module:
                    edges.append((target, imp))
        return graph

    # -- call graph -------------------------------------------------------

    def function_key(self, module: str, qualname: str) -> str:
        return f"{module}::{qualname}"

    def functions(self) -> dict[str, FunctionFact]:
        out: dict[str, FunctionFact] = {}
        for facts in self.modules.values():
            for qualname, fact in facts.functions.items():
                out[self.function_key(facts.module, qualname)] = fact
        return out

    def resolve_call(self, caller_module: str, caller_qualname: str,
                     callee: str) -> str | None:
        """Function key a call fact lands on, if it is a project function."""
        facts = self.modules.get(self.by_module.get(caller_module, ""))
        if callee.startswith("local:"):
            name = callee[len("local:"):]
            if facts and name in facts.functions:
                return self.function_key(caller_module, name)
            return None
        if callee.startswith("self:"):
            name = callee[len("self:"):]
            if facts and "." in caller_qualname:
                cls = caller_qualname.split(".")[0]
                if f"{cls}.{name}" in facts.functions:
                    return self.function_key(caller_module, f"{cls}.{name}")
            return None
        if callee == "?":
            return None
        # dotted: strip the function (and maybe class) name off the end
        parts = callee.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.by_module:
                qualname = ".".join(parts[split:])
                target = self.modules[self.by_module[module]]
                if qualname in target.functions:
                    return self.function_key(module, qualname)
                return None
        return None


# ---- the phase-1 cache ------------------------------------------------------

def engine_signature() -> str:
    """Hash of every source file of the lint package.

    Any rule or engine edit must invalidate cached facts *and* cached
    per-file findings; hashing the package source is the bluntest
    correct key.
    """
    lint_dir = Path(__file__).parent
    digest = hashlib.sha256()
    for path in sorted(lint_dir.rglob("*.py")):
        digest.update(path.read_bytes())
    return digest.hexdigest()


def _json_default(value):
    if isinstance(value, (set, frozenset)):
        return sorted(value)
    raise TypeError(f"not JSON serializable: {type(value).__name__}")


def _facts_to_dict(facts: ModuleFacts) -> dict:
    return asdict(facts)


def _facts_from_dict(data: dict) -> ModuleFacts:
    facts = ModuleFacts(path=data["path"], module=data["module"],
                        sha=data["sha"])
    facts.imports = [ImportFact(**d) for d in data["imports"]]
    facts.functions = {}
    for qualname, fd in data["functions"].items():
        fact = FunctionFact(
            qualname=fd["qualname"], lineno=fd["lineno"],
            is_async=fd["is_async"], nested=fd["nested"],
            params=tuple(fd["params"]),
            calls=[CallFact(**d) for d in fd["calls"]],
            blocking=[BlockingFact(**d) for d in fd["blocking"]],
            tasks=[TaskFact(**d) for d in fd["tasks"]],
            conds=[CondFact(**d) for d in fd["conds"]],
            submits=[SubmitFact(**d) for d in fd["submits"]],
            rng_creates=[RngCreateFact(**d) for d in fd["rng_creates"]],
            args=[ArgFact(**d) for d in fd["args"]],
            returns=list(fd["returns"]),
            future_results=list(fd["future_results"]))
        facts.functions[qualname] = fact
    facts.condition_names = list(data["condition_names"])
    facts.file_findings = [Finding(**d) for d in data["file_findings"]]
    facts.suppressions = [
        Suppression(line=d["line"], rules=frozenset(d["rules"]),
                    file_wide=d["file_wide"], reason=d["reason"],
                    standalone=d["standalone"])
        for d in data["suppressions"]]
    facts.suppression_meta = [Finding(**d) for d in data["suppression_meta"]]
    facts.has_wallclock = data["has_wallclock"]
    facts.imports_asyncio = data["imports_asyncio"]
    facts.parse_error = data["parse_error"]
    return facts


class FactsCache:
    """Per-file JSON cache of phase-1 facts keyed on source + engine."""

    def __init__(self, cache_dir: Path, signature: str) -> None:
        self.dir = cache_dir
        self.signature = signature

    def _entry_path(self, rel_path: str) -> Path:
        name = hashlib.sha256(rel_path.encode()).hexdigest()[:24]
        return self.dir / f"{name}.json"

    def get(self, rel_path: str, source_sha: str) -> ModuleFacts | None:
        entry = self._entry_path(rel_path)
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if data.get("engine") != self.signature \
                or data.get("sha") != source_sha \
                or data.get("path") != rel_path:
            return None
        try:
            return _facts_from_dict(data["facts"])
        except (KeyError, TypeError):
            return None

    def put(self, facts: ModuleFacts) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        payload = {"engine": self.signature, "sha": facts.sha,
                   "path": facts.path, "facts": _facts_to_dict(facts)}
        self._entry_path(facts.path).write_text(
            json.dumps(payload, sort_keys=True, default=_json_default),
            encoding="utf-8")


# ---- orchestration ----------------------------------------------------------

def build_index(paths: Iterable[str | Path] | None = None,
                root: Path | None = None,
                rules: dict[str, Rule] | None = None,
                config: LintConfig | None = None,
                use_cache: bool = False) -> ProjectIndex:
    """Phase 1 over files/directories -> the shared project index."""
    root = Path(root) if root is not None else Path.cwd()
    config = config if config is not None else LintConfig.load(root)
    rules = rules if rules is not None else all_rules()
    cache = FactsCache(root / config.cache_dir, engine_signature()) \
        if use_cache else None
    modules: list[ModuleFacts] = []
    for file_path in iter_python_files(paths or config.paths, config, root):
        rel = _rel(file_path, root)
        source = file_path.read_text()
        if cache is not None:
            sha = hashlib.sha256(source.encode()).hexdigest()
            cached = cache.get(rel, sha)
            if cached is not None:
                modules.append(cached)
                continue
        facts = analyze_module(source, rel, rules=rules)
        if cache is not None:
            cache.put(facts)
        modules.append(facts)
    return ProjectIndex(modules)


def _rel(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def _apply_suppressions(index: ProjectIndex, findings: list[Finding],
                        config: LintConfig) -> list[Finding]:
    """Config allowlists + inline suppressions + the meta rule."""
    kept: list[Finding] = []
    for finding in findings:
        if config.allowed(finding.rule, finding.path):
            continue
        facts = index.modules.get(finding.path)
        if facts is not None and any(s.covers(finding)
                                     for s in facts.suppressions):
            continue
        kept.append(finding)
    for facts in index.modules.values():
        if config.allowed(SUPPRESSION_RULE, facts.path):
            continue
        kept.extend(facts.suppression_meta)
    return sorted(kept, key=lambda f: f.sort_key)


def run_project_rules(index: ProjectIndex, config: LintConfig,
                      project_rules: dict[str, ProjectRule] | None = None) \
        -> list[Finding]:
    rules = project_rules if project_rules is not None \
        else all_project_rules()
    findings: list[Finding] = []
    for rule in rules.values():
        findings.extend(rule.check_project(index, config))
    return findings


def lint_project(paths: Iterable[str | Path] | None = None,
                 root: Path | None = None,
                 rules: dict[str, Rule] | None = None,
                 project_rules: dict[str, ProjectRule] | None = None,
                 config: LintConfig | None = None,
                 use_cache: bool = False) \
        -> tuple[list[Finding], ProjectIndex]:
    """Both phases over files/directories; returns (findings, index)."""
    root = Path(root) if root is not None else Path.cwd()
    config = config if config is not None else LintConfig.load(root)
    index = build_index(paths, root=root, rules=rules, config=config,
                        use_cache=use_cache)
    findings: list[Finding] = []
    for facts in index.modules.values():
        findings.extend(facts.file_findings)
    findings.extend(run_project_rules(index, config,
                                      project_rules=project_rules))
    return _apply_suppressions(index, findings, config), index


def lint_single_source(source: str, path: str,
                       rules: dict[str, Rule] | None = None,
                       config: LintConfig | None = None) -> list[Finding]:
    """One file as a one-module project (the ``lint_source`` contract)."""
    config = config or LintConfig()
    facts = analyze_module(source, path, rules=rules)
    index = ProjectIndex([facts])
    findings = list(facts.file_findings)
    if not facts.parse_error:
        findings.extend(run_project_rules(index, config))
    return _apply_suppressions(index, findings, config)
