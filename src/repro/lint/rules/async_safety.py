"""Async/executor safety rules over the phase-1 call summaries.

Every ``async def`` in this repository is treated as reachable from the
service event loop (the service is the only reason coroutines exist
here), so the rules need no entry-point annotation:

* ``async-blocking`` — a thread-blocking call (``time.sleep``,
  ``subprocess.run``, sync sockets/HTTP) inside an ``async def``, or
  inside any sync helper an ``async def`` calls through a chain of
  project functions, stalls every job on the loop.  File I/O is flagged
  only when it sits in a loop — one config read is noise, a per-item
  read loop is a stall.  Bare ``fut.result()`` on a future inside a
  coroutine is flagged too: it deadlocks if the future is not already
  done.
* ``async-condition`` — ``wait``/``notify`` on an
  ``asyncio.Condition`` outside an ``async with`` on that same
  condition raises at runtime on the unlucky schedule; the rule finds
  the sites the tests never hit.  Receivers are matched against every
  name the project binds to ``asyncio.Condition()`` (including
  dataclass ``field(default_factory=...)``).
* ``async-fire-forget`` — ``asyncio.create_task``/``ensure_future``
  as a bare expression statement: nothing holds the task, so the event
  loop may garbage-collect it mid-flight and its exceptions vanish.
* ``exec-picklable`` — a lambda or nested function submitted to a
  ``ProcessPoolExecutor`` (or ``run_in_executor`` with a process pool)
  pickles at submit time and dies at runtime, not at review time.
  Thread pools take anything callable and are exempt.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding, LintConfig, ProjectRule, \
    register_project
from repro.lint.project import BLOCKING_ORIGINS, ProjectIndex


@register_project
class AsyncBlockingRule(ProjectRule):
    id = "async-blocking"
    description = "blocking call on the event loop"
    hint = ("await the asyncio equivalent, or push the call into "
            "run_in_executor so the loop keeps serving other jobs")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        functions = index.functions()

        # transitive blocking summary over *sync* project functions:
        # an async caller is flagged at its call site into the chain.
        memo: dict[str, str | None] = {}

        def blocks_via(key: str, trail: set[str]) -> str | None:
            if key in memo:
                return memo[key]
            if key in trail:
                return None
            fact = functions[key]
            if fact.is_async:
                return None     # awaited coroutines report themselves
            for blocking in fact.blocking:
                if blocking.origin in BLOCKING_ORIGINS:
                    memo[key] = blocking.origin
                    return blocking.origin
            trail.add(key)
            module = key.split("::")[0]
            for call in fact.calls:
                target = index.resolve_call(module, fact.qualname,
                                            call.callee)
                if target is None:
                    continue
                origin = blocks_via(target, trail)
                if origin is not None:
                    memo[key] = origin
                    trail.discard(key)
                    return origin
            trail.discard(key)
            memo[key] = None
            return None

        for key in sorted(functions):
            fact = functions[key]
            if not fact.is_async:
                continue
            module = key.split("::")[0]
            path = index.modules[index.by_module[module]].path
            for blocking in fact.blocking:
                if blocking.origin in BLOCKING_ORIGINS:
                    yield self.finding(
                        path, blocking.lineno,
                        f"blocking call to {blocking.origin}() in async "
                        f"{fact.qualname}")
                elif blocking.in_loop:
                    yield self.finding(
                        path, blocking.lineno,
                        f"blocking file I/O ({blocking.origin.split(':')[1]})"
                        f" in a loop in async {fact.qualname}")
            for lineno in fact.future_results:
                yield self.finding(
                    path, lineno,
                    f"bare Future.result() in async {fact.qualname} blocks "
                    "the loop unless the future is already done")
            for call in fact.calls:
                target = index.resolve_call(module, fact.qualname,
                                            call.callee)
                if target is None:
                    continue
                origin = blocks_via(target, set())
                if origin is not None:
                    target_fact = functions[target]
                    yield self.finding(
                        path, call.lineno,
                        f"async {fact.qualname} calls "
                        f"{target_fact.qualname}, which blocks on "
                        f"{origin}()")


@register_project
class ConditionDisciplineRule(ProjectRule):
    id = "async-condition"
    description = "asyncio.Condition operation outside its lock"
    hint = "wrap the wait/notify in `async with <condition>:`"

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        condition_names: set[str] = set()
        for facts in index.modules.values():
            condition_names.update(facts.condition_names)
        if not condition_names:
            return
        for facts in sorted(index.modules.values(), key=lambda f: f.module):
            for fact in facts.functions.values():
                for cond in fact.conds:
                    attr = cond.receiver.split(".")[-1]
                    if attr not in condition_names or cond.guarded:
                        continue
                    yield self.finding(
                        facts.path, cond.lineno,
                        f"{cond.receiver}.{cond.op}() outside "
                        f"`async with {cond.receiver}:`")


@register_project
class FireAndForgetRule(ProjectRule):
    id = "async-fire-forget"
    description = "task created and immediately dropped"
    hint = ("keep a reference (collection or attribute) and await or "
            "cancel it on shutdown; dropped tasks can be collected "
            "mid-flight and swallow exceptions")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        for facts in sorted(index.modules.values(), key=lambda f: f.module):
            for fact in facts.functions.values():
                for task in fact.tasks:
                    if task.discarded:
                        yield self.finding(
                            facts.path, task.lineno,
                            f"{task.origin}(...) result discarded: "
                            "fire-and-forget task")


@register_project
class PicklableSubmitRule(ProjectRule):
    id = "exec-picklable"
    description = "unpicklable callable submitted to a process pool"
    hint = ("process pools pickle the callable: submit a module-level "
            "function (use functools.partial for bound arguments)")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        for facts in sorted(index.modules.values(), key=lambda f: f.module):
            for fact in facts.functions.values():
                for submit in fact.submits:
                    if submit.executor != "process":
                        continue
                    if submit.callable_kind in ("lambda", "nested"):
                        yield self.finding(
                            facts.path, submit.lineno,
                            f"{submit.callable_kind} function "
                            f"{submit.callable_name!r} submitted to a "
                            f"process pool via {submit.api}() cannot be "
                            "pickled")
