"""Determinism rules: the simulation must be a pure function of its seed.

Every result in this repository is reproduced bit-for-bit from a seed
(``repro.engine.rng``); fastpath parity and the fault-injection replay
guarantee both depend on it. These rules forbid the ways wall-clock
time and ambient randomness leak into simulator state or rendered
artifacts:

* ``det-wallclock`` — ``time.time``/``perf_counter``/``sleep``,
  ``datetime.now`` and friends, plus the asyncio faces of the same
  clock: ``asyncio.sleep`` and the event loop's ``loop.time()``.
  Harness-level timing (experiment timeouts, benchmark scoring, the
  experiment service's worker backoff) is legitimate but must carry an
  inline justification so the boundary stays audited.
* ``det-id-key``   — ``id(obj)`` used as a container key: CPython heap
  addresses differ between runs, so iteration order (and anything
  derived from it) would too.
* ``det-set-iter`` — direct iteration over a set literal or ``set()``
  call: set order depends on insertion history and hash seeds; sort
  first when order can reach simulator state or output.

Ambient-randomness policing moved to the interprocedural
``det-seed-flow`` project rule (:mod:`repro.lint.rules.seedflow`),
which understands the blessed ``make_rng``/``spawn_rng`` factories
instead of flagging every ``random.*`` spelling syntactically.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import FileContext, Finding, Rule, register
from repro.lint.project import WALLCLOCK_ORIGINS as _WALLCLOCK


@register
class WallClockRule(Rule):
    id = "det-wallclock"
    description = ("wall-clock call can leak host time into simulator "
                   "state or artifacts")
    hint = ("use sim.now_ns / repro.units for simulated time; suppress "
            "with a reason if this is genuinely harness-side timing")
    node_types = (ast.Call,)

    def visit(self, ctx: FileContext, node: ast.Call) -> Iterable[Finding]:
        origin = ctx.resolve(node.func)
        if origin in _WALLCLOCK:
            yield self.finding(ctx, node, f"call to {origin}()")
            return
        # The event loop's clock: ``loop.time()`` reads the host
        # monotonic clock through a local variable the import resolver
        # cannot see through, so match the conventional receiver name
        # (``loop``, ``event_loop``, ``_loop``, ...).
        func = node.func
        if (origin is None and isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and "loop" in func.value.id.lower()):
            yield self.finding(
                ctx, node,
                f"call to {func.value.id}.time() (event-loop wall clock)")


@register
class IdKeyRule(Rule):
    id = "det-id-key"
    description = "id()-keyed container: heap addresses vary across runs"
    hint = "key on a stable identifier (core_id, name, index) instead"
    node_types = (ast.Subscript, ast.Dict, ast.Call)

    @staticmethod
    def _is_id_call(node: ast.AST) -> bool:
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "id"
                and len(node.args) == 1)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.Subscript) and self._is_id_call(node.slice):
            yield self.finding(ctx, node, "id() used as subscript key")
        elif isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None and self._is_id_call(key):
                    yield self.finding(ctx, key, "id() used as dict key")
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr in ("setdefault", "get", "pop") \
                and node.args and self._is_id_call(node.args[0]):
            yield self.finding(
                ctx, node, f"id() used as .{node.func.attr}() key")


def _is_bare_set(node: ast.expr) -> bool:
    """A set literal or ``set(...)`` call, unwrapped by any ordering."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


_ORDER_SENSITIVE_CONSUMERS = frozenset({"list", "tuple", "enumerate"})


@register
class SetIterationRule(Rule):
    id = "det-set-iter"
    description = ("iteration order of a set is not deterministic across "
                   "processes")
    hint = "wrap in sorted(...) before iterating"
    node_types = (ast.For, ast.comprehension, ast.Call)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.For) and _is_bare_set(node.iter):
            yield self.finding(ctx, node, "for-loop over an unordered set")
        elif isinstance(node, ast.comprehension) and _is_bare_set(node.iter):
            yield self.finding(ctx, node.iter,
                               "comprehension over an unordered set")
        elif isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Name) \
                and node.func.id in _ORDER_SENSITIVE_CONSUMERS \
                and node.args and _is_bare_set(node.args[0]):
            yield self.finding(
                ctx, node,
                f"{node.func.id}() over an unordered set fixes an "
                "arbitrary order")
