"""Architecture rules: the layer map, import cycles, sim-core purity.

The layer map lives in ``pyproject.toml`` as ``[[tool.repro-lint.layer]]``
tables, lowest layer first.  A module belongs to the first layer whose
package prefix matches; modules outside every layer (the ``repro``
package root, scripts, benchmarks) are unconstrained.

* ``arch-layering`` — a module-level import from a lower-layer module
  into a higher layer is a back-edge: the dependency arrow must point
  downward (or sideways, within one layer).  Deferred (function-body)
  and ``TYPE_CHECKING`` imports are exempt — they are the sanctioned
  escape hatches for runtime plugins and annotations.
* ``arch-cycle`` — strongly-connected components of the module-level
  internal import graph.  Cycles are reported once per cycle at the
  lexicographically first member.
* ``arch-sim-reach`` — no module of the deterministic simulation core
  (``sim-core`` prefixes in config) may import asyncio or call
  wall-clock functions, directly or through any chain of module-level
  imports that stays inside the core's downward closure.  This is what
  keeps bit-identical replay honest: the sim core cannot observe host
  time even by accident of transitive import.
"""

from __future__ import annotations

from typing import Iterable

from repro.lint.engine import Finding, LintConfig, ProjectRule, \
    register_project
from repro.lint.project import ImportFact, ProjectIndex


def strongly_connected(graph: dict[str, list[str]]) -> list[list[str]]:
    """Tarjan's SCC, iterative; only components of size > 1 returned."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = [0]

    for root in sorted(graph):
        if root in index_of:
            continue
        work: list[tuple[str, int]] = [(root, 0)]
        while work:
            node, edge_index = work[-1]
            if edge_index == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            targets = graph.get(node, [])
            advanced = False
            for position in range(edge_index, len(targets)):
                target = targets[position]
                if target not in graph:
                    continue
                if target not in index_of:
                    work[-1] = (node, position + 1)
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    low[node] = min(low[node], index_of[target])
            if advanced:
                continue
            work.pop()
            if low[node] == index_of[node]:
                component: list[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
    return components


@register_project
class LayeringRule(ProjectRule):
    id = "arch-layering"
    description = "module-level import against the layer map's arrows"
    hint = ("depend downward only; invert the edge via an interface "
            "module in the lower layer, or defer the import into the "
            "function that needs it")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        if not config.layers:
            return
        for facts in index.modules.values():
            source_layer = config.layer_of(facts.module)
            if source_layer is None:
                continue
            seen: set[tuple[str, int]] = set()
            for imp in facts.toplevel_imports():
                target = index.resolve_internal(imp.target)
                if target is None or target == facts.module:
                    continue
                # ``from x import a, b`` records one fact per name; one
                # finding per (target module, line) is enough.
                if (target, imp.lineno) in seen:
                    continue
                seen.add((target, imp.lineno))
                target_layer = config.layer_of(target)
                if target_layer is None:
                    continue
                if target_layer[0] > source_layer[0]:
                    yield self.finding(
                        facts.path, imp.lineno,
                        f"{facts.module} (layer {source_layer[1]}) imports "
                        f"{target} (layer {target_layer[1]}): dependency "
                        "arrow points upward")


@register_project
class ImportCycleRule(ProjectRule):
    id = "arch-cycle"
    description = "module-level import cycle inside the project"
    hint = ("break the cycle: move the shared piece below both modules "
            "or defer one import into the using function")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        edges = index.import_edges()
        graph = {module: sorted({target for target, _ in targets})
                 for module, targets in edges.items()}
        for component in strongly_connected(graph):
            head = component[0]
            facts = index.modules[index.by_module[head]]
            lineno = 1
            for target, imp in edges.get(head, []):
                if target in component:
                    lineno = imp.lineno
                    break
            yield self.finding(
                facts.path, lineno,
                "import cycle: " + " -> ".join([*component, head]))


@register_project
class SimCoreReachRule(ProjectRule):
    id = "arch-sim-reach"
    description = ("sim-core module reaches asyncio or wall-clock code "
                   "at import time")
    hint = ("the deterministic core must stay clock-free: move the "
            "asyncio/wall-clock code out of the core's import closure "
            "or out of the sim-core prefix list")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        if not config.sim_core:
            return
        # taint: a module is tainted if it imports asyncio or calls
        # wall-clock functions anywhere; propagate backward over the
        # module-level import graph so importing a tainted module is
        # itself tainting.
        edges = index.import_edges()
        direct_taint: dict[str, str] = {}
        for facts in index.modules.values():
            if facts.imports_asyncio:
                direct_taint[facts.module] = "imports asyncio"
            elif facts.has_wallclock:
                direct_taint[facts.module] = "calls wall-clock functions"

        reach: dict[str, tuple[str, str] | None] = {}

        def tainted_via(module: str, trail: set[str]) -> tuple[str, str] | None:
            """(tainted module, why) reachable from here, or None."""
            if module in reach:
                return reach[module]
            if module in direct_taint:
                reach[module] = (module, direct_taint[module])
                return reach[module]
            if module in trail:
                return None     # cycle: resolved by the caller chain
            trail.add(module)
            for target, _ in edges.get(module, []):
                hit = tainted_via(target, trail)
                if hit is not None:
                    reach[module] = hit
                    trail.discard(module)
                    return hit
            trail.discard(module)
            reach[module] = None
            return None

        for facts in sorted(index.modules.values(),
                            key=lambda f: f.module):
            if not config.in_sim_core(facts.module):
                continue
            if facts.module in direct_taint:
                lineno = 1
                if facts.imports_asyncio:
                    for imp in facts.toplevel_imports():
                        if imp.target.split(".")[0] == "asyncio":
                            lineno = imp.lineno
                            break
                yield self.finding(
                    facts.path, lineno,
                    f"sim-core module {facts.module} "
                    f"{direct_taint[facts.module]}")
                continue
            for target, imp in edges.get(facts.module, []):
                hit = tainted_via(target, set())
                if hit is not None:
                    culprit, why = hit
                    yield self.finding(
                        facts.path, imp.lineno,
                        f"sim-core module {facts.module} reaches "
                        f"{culprit} (which {why}) via import of {target}")
                    break       # one finding per module is enough
