"""Epoch-hygiene rule: no writes that dodge ``__setattr__`` interception.

The steady-state fast path (``docs/performance.md``) caches each
socket's segment-rate matrix keyed on an :class:`repro.engine.epoch.EpochCell`
that is bumped by ``Core.__setattr__`` / ``Uncore.__setattr__`` when a
rate-relevant field changes. A write that bypasses normal attribute
assignment — ``object.__setattr__``, ``__dict__`` pokes, ``vars()``
subscript stores, ``setattr`` with a computed name — skips the bump,
leaving the cached matrix stale and silently desynchronizing fastpath
and slow-path results. ``epoch-bypass`` flags:

* ``object.__setattr__(obj, field, v)`` naming a rate-relevant field,
  or with a non-literal field name (unprovable), outside a
  ``__setattr__`` method body (the interceptors themselves must use it);
* any store through ``obj.__dict__[...]`` / ``vars(obj)[...]`` or
  ``obj.__dict__.update(...)``;
* ``setattr(obj, name, v)`` with a computed ``name`` — it does route
  through interception, but which field it writes cannot be verified
  statically, so it needs a literal or a justified suppression.

The same family polices the batched-RNG buffer: ``rng-batch-bypass``
flags any access to :class:`repro.engine.rng.DrawBatch`'s private
prefill state (``_prefill``, ``_prefill_args``, ``_prefill_cursor``)
outside ``repro/engine/rng.py``. ``take()`` is the only sanctioned
way to consume the buffer — it records the draw site in the sanitize
ledger exactly like a direct generator call; reaching into the buffer
consumes randomness invisibly, so a fastpath-on and fastpath-off run
could agree on every final counter while having drawn differently.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import FileContext, Finding, Rule, register

#: The union of Core._EPOCH_FIELDS and Uncore._EPOCH_FIELDS: writes to
#: these must bump the socket epoch (see repro.system.core / .uncore).
RATE_FIELDS = frozenset({
    "freq_hz", "requested_hz", "cstate", "avx_license", "workload",
    "_phase", "halted",
})


def _setattr_impl_spans(tree: ast.Module) -> list[tuple[int, int]]:
    """Line spans of ``def __setattr__`` bodies (the sanctioned callers
    of ``object.__setattr__``)."""
    return [(node.lineno, node.end_lineno or node.lineno)
            for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name in ("__setattr__", "__delattr__")]


def _is_dunder_dict(node: ast.expr) -> bool:
    return isinstance(node, ast.Attribute) and node.attr == "__dict__"


def _is_vars_call(node: ast.expr) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id == "vars")


@register
class EpochBypassRule(Rule):
    id = "epoch-bypass"
    description = ("attribute write bypasses EpochCell dirty tracking "
                   "(stale rate-matrix cache)")
    hint = ("assign normally so __setattr__ interception bumps the socket "
            "epoch; see docs/performance.md")
    node_types = (ast.Call, ast.Assign, ast.AugAssign, ast.AnnAssign)

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        self._spans = _setattr_impl_spans(ctx.tree)
        return ()

    def _in_setattr_impl(self, node: ast.AST) -> bool:
        line = getattr(node, "lineno", 0)
        return any(lo <= line <= hi for lo, hi in self._spans)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.Call):
            yield from self._visit_call(ctx, node)
            return
        # stores through __dict__ / vars(): x.__dict__["f"] = v etc.
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Subscript) and (
                    _is_dunder_dict(target.value)
                    or _is_vars_call(target.value)):
                yield self.finding(
                    ctx, target,
                    "store through __dict__/vars() bypasses __setattr__ "
                    "interception")

    def _visit_call(self, ctx: FileContext,
                    node: ast.Call) -> Iterable[Finding]:
        func = node.func
        # object.__setattr__(obj, "field", value)
        if isinstance(func, ast.Attribute) and func.attr == "__setattr__" \
                and isinstance(func.value, ast.Name) \
                and func.value.id == "object" \
                and not self._in_setattr_impl(node):
            name_arg = node.args[1] if len(node.args) >= 2 else None
            if isinstance(name_arg, ast.Constant) \
                    and isinstance(name_arg.value, str):
                if name_arg.value in RATE_FIELDS:
                    yield self.finding(
                        ctx, node,
                        f"object.__setattr__ writes rate-relevant field "
                        f"{name_arg.value!r} without an epoch bump")
            else:
                yield self.finding(
                    ctx, node,
                    "object.__setattr__ with a computed field name cannot "
                    "be proven epoch-safe")
        # obj.__dict__.update(...)
        elif isinstance(func, ast.Attribute) and func.attr == "update" \
                and _is_dunder_dict(func.value):
            yield self.finding(
                ctx, node,
                "__dict__.update() bypasses __setattr__ interception")
        # setattr(obj, <computed>, value)
        elif isinstance(func, ast.Name) and func.id == "setattr" \
                and len(node.args) >= 2 \
                and not (isinstance(node.args[1], ast.Constant)
                         and isinstance(node.args[1].value, str)):
            yield self.finding(
                ctx, node,
                "setattr with a computed field name cannot be verified "
                "against the epoch field set")


#: DrawBatch's private prefill state. Touching it outside the batch
#: implementation bypasses take()'s draw-order accounting.
BATCH_INTERNALS = frozenset({"_prefill", "_prefill_args",
                             "_prefill_cursor"})

#: The one module allowed to touch the prefill buffer.
_RNG_MODULE_SUFFIX = "repro/engine/rng.py"


@register
class RngBatchBypassRule(Rule):
    id = "rng-batch-bypass"
    description = ("direct access to the DrawBatch prefill buffer "
                   "bypasses draw-order accounting")
    hint = ("consume batched draws through DrawBatch.take(); only "
            "repro/engine/rng.py may touch the prefill state")
    node_types = (ast.Attribute,)

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        path = ctx.path.replace("\\", "/")
        self._exempt = path.endswith(_RNG_MODULE_SUFFIX)
        return ()

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        if self._exempt or node.attr not in BATCH_INTERNALS:
            return
        yield self.finding(
            ctx, node,
            f"access to DrawBatch internal {node.attr!r} outside "
            f"repro/engine/rng.py skips the sanitize ledger")
