"""MSR encoding rule: the register table must be sound and authoritative.

Applies to modules named ``msr_regs*.py`` (the data-sheet layer of the
host interface). The module must declare a ``REGISTER_LAYOUT`` mapping
of register -> tuple of ``BitField(name, lo, width)``; the rule then
checks, fully statically:

* fields of one register must not overlap and must fit in 64 bits;
* every ``*ENERGY_STATUS*`` register must declare the 32-bit wrap field
  at bit 0 (RAPL energy counters wrap at 2^32 on Haswell-EP — a missing
  wrap mask is exactly the class of bug the Skylake follow-up survey
  traces through derived results);
* every literal mask (``x & 0x7F``, ``FOO_MASK = 0x7FFF``) and every
  literal shift (``<< 8``, ``>> 8``, ``FLAG = 1 << 38``) elsewhere in
  the module must match a declared field's extent or position, so the
  hand-written codecs cannot drift from the table.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterable

from repro.lint.engine import FileContext, Finding, Rule, register


def _const_int(node: ast.expr) -> int | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _register_name(key: ast.expr) -> str:
    if isinstance(key, ast.Attribute):
        return key.attr
    if isinstance(key, ast.Name):
        return key.id
    if isinstance(key, ast.Constant):
        return str(key.value)
    return "<register>"


class _DeclaredField:
    def __init__(self, register: str, name: str, lo: int, width: int,
                 node: ast.AST) -> None:
        self.register = register
        self.name = name
        self.lo = lo
        self.width = width
        self.node = node

    @property
    def value_mask(self) -> int:
        return (1 << self.width) - 1

    @property
    def mask(self) -> int:
        return self.value_mask << self.lo


def _parse_layout(tree: ast.Module) -> tuple[list[_DeclaredField],
                                             ast.Dict | None]:
    """Extract BitField declarations from the REGISTER_LAYOUT literal."""
    layout: ast.Dict | None = None
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            continue
        if isinstance(target, ast.Name) and target.id == "REGISTER_LAYOUT" \
                and isinstance(node.value, ast.Dict):
            layout = node.value
            break
    if layout is None:
        return [], None
    fields: list[_DeclaredField] = []
    for key, value in zip(layout.keys, layout.values):
        register = _register_name(key) if key is not None else "<register>"
        elements = value.elts if isinstance(value, (ast.Tuple, ast.List)) \
            else [value]
        for element in elements:
            if not (isinstance(element, ast.Call)
                    and isinstance(element.func, ast.Name)
                    and element.func.id == "BitField"
                    and len(element.args) == 3):
                continue
            name = element.args[0].value \
                if isinstance(element.args[0], ast.Constant) else "<field>"
            lo = _const_int(element.args[1])
            width = _const_int(element.args[2])
            if lo is None or width is None:
                continue
            fields.append(_DeclaredField(register, str(name), lo, width,
                                         element))
    return fields, layout


@register
class MsrLayoutRule(Rule):
    id = "msr-layout"
    description = ("MSR bitfield table inconsistent or codec literal "
                   "drifted from it")
    hint = "fix REGISTER_LAYOUT (or the literal) so table and codec agree"

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not PurePosixPath(ctx.path).name.startswith("msr_regs"):
            return
        fields, layout = _parse_layout(ctx.tree)
        if layout is None:
            yield self.finding(
                ctx, ctx.tree,
                "msr_regs module has no declarative REGISTER_LAYOUT table")
            return

        # -- table self-consistency ------------------------------------
        by_register: dict[str, list[_DeclaredField]] = {}
        for field in fields:
            if field.width < 1 or field.lo < 0 or field.lo + field.width > 64:
                yield self.finding(
                    ctx, field.node,
                    f"{field.register}.{field.name}: bits "
                    f"{field.lo + field.width - 1}:{field.lo} do not fit a "
                    "64-bit register")
            by_register.setdefault(field.register, []).append(field)
        for register, declared in by_register.items():
            covered = 0
            for field in declared:
                if covered & field.mask:
                    yield self.finding(
                        ctx, field.node,
                        f"{register}.{field.name}: bits "
                        f"{field.lo + field.width - 1}:{field.lo} overlap "
                        "another field")
                covered |= field.mask
            if "ENERGY_STATUS" in register:
                wrap = [f for f in declared if f.lo == 0 and f.width == 32]
                if not wrap:
                    yield self.finding(
                        ctx, declared[0].node,
                        f"{register}: RAPL energy-status register must "
                        "declare the 32-bit wrap field at bit 0")

        # -- literal cross-check ---------------------------------------
        valid_masks = {f.value_mask for f in fields} \
            | {f.mask for f in fields}
        valid_shifts = {f.lo for f in fields if f.lo > 0} \
            | {f.width for f in fields}
        layout_span = (layout.lineno, layout.end_lineno or layout.lineno)
        for node in ast.walk(ctx.tree):
            line = getattr(node, "lineno", 0)
            if layout_span[0] <= line <= layout_span[1]:
                continue
            if isinstance(node, ast.BinOp):
                if isinstance(node.op, ast.BitAnd):
                    literal = _const_int(node.right) \
                        if _const_int(node.right) is not None \
                        else _const_int(node.left)
                    if literal is not None and literal not in valid_masks:
                        yield self.finding(
                            ctx, node,
                            f"mask {literal:#x} matches no declared field "
                            "extent")
                elif isinstance(node.op, (ast.LShift, ast.RShift)):
                    shift = _const_int(node.right)
                    if shift is not None and shift > 0 \
                            and shift not in valid_shifts:
                        yield self.finding(
                            ctx, node,
                            f"shift by {shift} matches no declared field "
                            "position")
            elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                    and isinstance(node.targets[0], ast.Name) \
                    and node.targets[0].id.endswith("_MASK"):
                literal = _const_int(node.value)
                if literal is not None and literal not in valid_masks:
                    yield self.finding(
                        ctx, node,
                        f"{node.targets[0].id} = {literal:#x} matches no "
                        "declared field extent")
