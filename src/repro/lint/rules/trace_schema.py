"""Trace-schema rules: the conformance event catalog must stay versioned.

Applies to any module that declares ``EVENT_SCHEMAS = schema_table(...)``
(in this tree: :mod:`repro.conformance.schema`). Golden conformance
traces embed the schema version and digest they were recorded under, so
an edit to the catalog that is not accompanied by a version bump
silently invalidates every committed trace. Three rule families make
that class of edit impossible to land:

* ``trace-schema-version`` — the module must declare an integer
  ``SCHEMA_VERSION`` and a literal ``SCHEMA_HISTORY`` dict whose keys
  are contiguous ``1..N`` with 16-hex-digit digest values, and
  ``SCHEMA_VERSION`` must be the latest entry (history is append-only
  by construction: removing or rewriting an old entry changes a digest
  some committed trace may reference).
* ``trace-schema-digest`` — the digest of the declared event table,
  computed statically from the AST with the exact algorithm of
  :func:`repro.conformance.schema.compute_digest`, must equal
  ``SCHEMA_HISTORY[SCHEMA_VERSION]``. Any schema-affecting edit without
  a bump fails here, with the expected digest in the message.
* ``trace-schema-field`` — event kinds must be unique kebab-case
  strings, field names unique snake_case, field types drawn from the
  declared scalar set; entries must be pure literals so the other two
  rules (and this one) can see them.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Iterable

from repro.lint.engine import FileContext, Finding, Rule, register

_KEBAB = re.compile(r"^[a-z0-9]+(-[a-z0-9]+)*$")
_SNAKE = re.compile(r"^[a-z][a-z0-9_]*$")
_HEX16 = re.compile(r"^[0-9a-f]{16}$")
_FIELD_TYPES = ("int", "float", "str", "bool", "dict")


class _ParsedSchema:
    def __init__(self, kind: str | None, node: ast.AST) -> None:
        self.kind = kind
        self.node = node
        # (name | None, type | None, node) per declared field
        self.fields: list[tuple[str | None, str | None, ast.AST]] = []
        self.literal = True     # False when any part is not a literal


def _str_const(node: ast.expr | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _find_table(tree: ast.Module) -> ast.Call | None:
    """The ``EVENT_SCHEMAS = schema_table(...)`` call, if declared."""
    for node in ast.walk(tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            continue
        if isinstance(target, ast.Name) and target.id == "EVENT_SCHEMAS" \
                and isinstance(node.value, ast.Call) \
                and isinstance(node.value.func, ast.Name) \
                and node.value.func.id == "schema_table":
            return node.value
    return None


def _parse_schemas(table: ast.Call) -> list[_ParsedSchema]:
    schemas: list[_ParsedSchema] = []
    for arg in table.args:
        if not (isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "EventSchema"
                and len(arg.args) == 2):
            parsed = _ParsedSchema(None, arg)
            parsed.literal = False
            schemas.append(parsed)
            continue
        parsed = _ParsedSchema(_str_const(arg.args[0]), arg)
        if parsed.kind is None:
            parsed.literal = False
        fields_node = arg.args[1]
        if not isinstance(fields_node, (ast.Tuple, ast.List)):
            parsed.literal = False
            schemas.append(parsed)
            continue
        for element in fields_node.elts:
            if (isinstance(element, ast.Call)
                    and isinstance(element.func, ast.Name)
                    and element.func.id == "EventField"
                    and len(element.args) == 2):
                name = _str_const(element.args[0])
                type_name = _str_const(element.args[1])
                if name is None or type_name is None:
                    parsed.literal = False
                parsed.fields.append((name, type_name, element))
            else:
                parsed.literal = False
                parsed.fields.append((None, None, element))
        schemas.append(parsed)
    return schemas


def _int_assign(tree: ast.Module, name: str) -> tuple[int | None, ast.AST | None]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == name:
            if isinstance(node.value, ast.Constant) \
                    and isinstance(node.value.value, int) \
                    and not isinstance(node.value.value, bool):
                return node.value.value, node
            return None, node
    return None, None


def _history_assign(tree: ast.Module) -> tuple[dict[int, str] | None,
                                               ast.AST | None]:
    """``SCHEMA_HISTORY`` as {int: str}, or (None, node) when malformed."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and node.targets[0].id == "SCHEMA_HISTORY":
            if not isinstance(node.value, ast.Dict):
                return None, node
            history: dict[int, str] = {}
            for key, value in zip(node.value.keys, node.value.values):
                if not (isinstance(key, ast.Constant)
                        and isinstance(key.value, int)
                        and isinstance(value, ast.Constant)
                        and isinstance(value.value, str)):
                    return None, node
                history[key.value] = value.value
            return history, node
    return None, None


def _ast_digest(schemas: list[_ParsedSchema]) -> str | None:
    """The table digest, mirroring ``schema.compute_digest`` exactly.

    None when any entry is non-literal (``trace-schema-field`` owns
    that); duplicate kinds collapse like the runtime dict does.
    """
    table: dict[str, list[tuple[str, str]]] = {}
    for parsed in schemas:
        if not parsed.literal or parsed.kind is None:
            return None
        table[parsed.kind] = [(n, t) for n, t, _ in parsed.fields
                              if n is not None and t is not None]
    lines = []
    for kind in sorted(table):
        fields = ",".join(f"{name}:{type_name}" for name, type_name
                          in sorted(table[kind]))
        lines.append(f"{kind}({fields})")
    text = "\n".join(lines)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


@register
class TraceSchemaVersionRule(Rule):
    id = "trace-schema-version"
    description = ("conformance schema module lacks a sound "
                   "SCHEMA_VERSION/SCHEMA_HISTORY declaration")
    hint = ("declare an int SCHEMA_VERSION and an append-only "
            "SCHEMA_HISTORY {1..N: 16-hex digest} ending at the version")

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        table = _find_table(ctx.tree)
        if table is None:
            return
        version, version_node = _int_assign(ctx.tree, "SCHEMA_VERSION")
        history, history_node = _history_assign(ctx.tree)
        if version_node is None:
            yield self.finding(ctx, table,
                               "module declares EVENT_SCHEMAS but no "
                               "SCHEMA_VERSION")
        elif version is None:
            yield self.finding(ctx, version_node,
                               "SCHEMA_VERSION must be an integer literal")
        if history_node is None:
            yield self.finding(ctx, table,
                               "module declares EVENT_SCHEMAS but no "
                               "SCHEMA_HISTORY")
            return
        if history is None:
            yield self.finding(ctx, history_node,
                               "SCHEMA_HISTORY must be a literal dict of "
                               "int version -> digest string")
            return
        bad_digests = [v for v in history.values()
                       if not _HEX16.match(v)]
        for value in bad_digests:
            yield self.finding(ctx, history_node,
                               f"SCHEMA_HISTORY digest {value!r} is not a "
                               "16-hex-digit string")
        if sorted(history) != list(range(1, len(history) + 1)):
            yield self.finding(ctx, history_node,
                               f"SCHEMA_HISTORY keys {sorted(history)} are "
                               "not contiguous from 1 (history is "
                               "append-only)")
        elif version is not None and version != max(history):
            yield self.finding(ctx, history_node,
                               f"SCHEMA_VERSION is {version} but the latest "
                               f"SCHEMA_HISTORY entry is {max(history)}")


@register
class TraceSchemaDigestRule(Rule):
    id = "trace-schema-digest"
    description = ("conformance event table changed without a schema "
                   "version bump")
    hint = ("bump SCHEMA_VERSION, append the new digest to "
            "SCHEMA_HISTORY, and regenerate the golden traces")

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        table = _find_table(ctx.tree)
        if table is None:
            return
        version, _ = _int_assign(ctx.tree, "SCHEMA_VERSION")
        history, history_node = _history_assign(ctx.tree)
        if version is None or history is None or version not in history:
            return      # trace-schema-version owns structural problems
        digest = _ast_digest(_parse_schemas(table))
        if digest is None:
            return      # trace-schema-field owns non-literal entries
        if history[version] != digest:
            yield self.finding(
                ctx, history_node,
                f"EVENT_SCHEMAS digest is {digest} but "
                f"SCHEMA_HISTORY[{version}] records {history[version]}")


@register
class TraceSchemaFieldRule(Rule):
    id = "trace-schema-field"
    description = ("conformance event table entry is malformed "
                   "(naming, typing, or non-literal declaration)")
    hint = ("use literal EventSchema('kebab-kind', (EventField('name', "
            "'type'), ...)) entries with types from the scalar set")

    def begin_file(self, ctx: FileContext) -> Iterable[Finding]:
        table = _find_table(ctx.tree)
        if table is None:
            return
        seen_kinds: set[str] = set()
        for parsed in _parse_schemas(table):
            if parsed.kind is None:
                yield self.finding(ctx, parsed.node,
                                   "event table entry is not a literal "
                                   "EventSchema('kind', (fields...)) call")
                continue
            if not _KEBAB.match(parsed.kind):
                yield self.finding(ctx, parsed.node,
                                   f"event kind {parsed.kind!r} is not "
                                   "kebab-case")
            if parsed.kind in seen_kinds:
                yield self.finding(ctx, parsed.node,
                                   f"duplicate event kind {parsed.kind!r}")
            seen_kinds.add(parsed.kind)
            seen_fields: set[str] = set()
            for name, type_name, node in parsed.fields:
                if name is None or type_name is None:
                    yield self.finding(
                        ctx, node,
                        f"event {parsed.kind!r}: field is not a literal "
                        "EventField('name', 'type') call")
                    continue
                if not _SNAKE.match(name):
                    yield self.finding(
                        ctx, node,
                        f"event {parsed.kind!r}: field name {name!r} is "
                        "not snake_case")
                if name in seen_fields:
                    yield self.finding(
                        ctx, node,
                        f"event {parsed.kind!r}: duplicate field {name!r}")
                seen_fields.add(name)
                if type_name not in _FIELD_TYPES:
                    yield self.finding(
                        ctx, node,
                        f"event {parsed.kind!r}: field {name!r} has "
                        f"unknown type {type_name!r} (valid: "
                        f"{', '.join(_FIELD_TYPES)})")
