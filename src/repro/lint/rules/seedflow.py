"""``det-seed-flow``: seed-provenance taint for random generators.

Replaces the syntactic ``det-rng`` rule.  Every generator in this
repository must descend from a plan seed through the blessed factories
(``repro.engine.rng.make_rng`` / ``spawn_rng``); this rule tracks where
generators are *born* and where they *flow*:

* an ambient construction — ``numpy.random.default_rng``,
  ``random.Random()``, ``secrets.*``, ``os.urandom``, ``uuid.uuid4`` —
  outside a blessed factory module is flagged at the call site;
* an argument flowing into an ``rng``-named parameter of a project
  function (``rng``, ``parent_rng``, ``node_rng``, …) is classified by
  walking the def/use chain interprocedurally: a value returned by a
  blessed factory (directly or through any chain of project functions)
  is *blessed*; a value traceable to an ambient constructor is
  *ambient* and flagged; anything the analysis cannot prove (parameters
  of the caller, attribute loads, arbitrary expressions) stays
  *unknown* and is never flagged — the rule only reports taint it can
  actually demonstrate.

Classification is a fixed point over per-function return summaries from
phase 1, with a memo and a cycle guard (recursive chains resolve to
unknown rather than looping).
"""

from __future__ import annotations

import re
from typing import Iterable

from repro.lint.engine import Finding, LintConfig, ProjectRule, \
    register_project
from repro.lint.project import (
    AMBIENT_RNG_EXACT,
    AMBIENT_RNG_PREFIXES,
    FunctionFact,
    ProjectIndex,
)

_RNG_PARAM_RE = re.compile(r"(^|_)rng$")

BLESSED, AMBIENT, UNKNOWN = "blessed", "ambient", "unknown"


@register_project
class SeedFlowRule(ProjectRule):
    id = "det-seed-flow"
    description = ("random generator not derived from the plan seed "
                   "through the blessed factories")
    hint = ("derive generators from repro.engine.rng.make_rng(seed) / "
            "spawn_rng(parent) so replay stays bit-identical")

    def check_project(self, index: ProjectIndex,
                      config: LintConfig) -> Iterable[Finding]:
        self._index = index
        self._config = config
        self._functions = index.functions()
        self._return_memo: dict[str, str] = {}

        for facts in sorted(index.modules.values(), key=lambda f: f.module):
            if config.is_rng_factory(facts.module):
                continue    # the factory is the sanctioned birthplace
            for fact in facts.functions.values():
                for create in fact.rng_creates:
                    yield self.finding(
                        facts.path, create.lineno,
                        f"ambient RNG from {create.origin}() outside "
                        "the blessed factory modules")
                for arg in fact.args:
                    param = self._rng_param(facts.module, fact, arg)
                    if param is None:
                        continue
                    verdict = self._classify(facts.module, fact, arg.source,
                                             trail=set())
                    if verdict == AMBIENT:
                        yield self.finding(
                            facts.path, arg.lineno,
                            f"argument for parameter {param!r} of "
                            f"{self._callee_label(arg.callee)} traces to an "
                            "ambient RNG, not a plan seed")

    # -- which arguments are generator-valued ----------------------------

    def _rng_param(self, module: str, fact: FunctionFact, arg) -> str | None:
        """Resolved rng-ish parameter name this argument feeds, or None."""
        if not arg.param.startswith("#"):
            return arg.param if _RNG_PARAM_RE.search(arg.param) else None
        key = self._index.resolve_call(module, fact.qualname, arg.callee)
        if key is None:
            return None
        callee = self._functions[key]
        position = int(arg.param[1:])
        if callee.params and callee.params[0] in ("self", "cls") \
                and arg.callee.startswith("self:"):
            position += 1
        if position >= len(callee.params):
            return None
        name = callee.params[position]
        return name if _RNG_PARAM_RE.search(name) else None

    @staticmethod
    def _callee_label(callee: str) -> str:
        for prefix in ("local:", "self:"):
            if callee.startswith(prefix):
                return callee[len(prefix):]
        return callee

    # -- provenance classification ----------------------------------------

    def _is_blessed_factory(self, module: str, callee: str) -> bool:
        """Does this callee name a blessed factory function?"""
        label = self._callee_label(callee)
        parts = label.split(".")
        if parts[-1] not in self._config.rng_factory_functions:
            return False
        if len(parts) == 1:
            # bare name: blessed when it resolves into a factory module
            # or when we *are* the factory module defining it.
            key = self._index.resolve_call(module, "<module>", callee)
            if key is not None:
                return self._config.is_rng_factory(key.split("::")[0])
            return self._config.is_rng_factory(module)
        return self._config.is_rng_factory(".".join(parts[:-1]))

    def _classify(self, module: str, fact: FunctionFact, source: str,
                  trail: set[str]) -> str:
        if source.startswith("call:"):
            callee = source[len("call:"):]
            if self._is_blessed_factory(module, callee):
                return BLESSED
            origin = self._callee_label(callee)
            if origin in AMBIENT_RNG_EXACT \
                    or origin.startswith(AMBIENT_RNG_PREFIXES):
                return AMBIENT
            key = self._index.resolve_call(module, fact.qualname, callee)
            if key is not None:
                return self._returns_of(key, trail)
            return UNKNOWN
        return UNKNOWN      # params, attribute loads, plain expressions

    def _returns_of(self, key: str, trail: set[str]) -> str:
        """Join of a project function's return classifications."""
        if key in self._return_memo:
            return self._return_memo[key]
        if key in trail:
            return UNKNOWN
        trail.add(key)
        fact = self._functions[key]
        module = key.split("::")[0]
        verdicts = {self._classify(module, fact, ret, trail)
                    for ret in fact.returns}
        trail.discard(key)
        if AMBIENT in verdicts:
            verdict = AMBIENT
        elif verdicts == {BLESSED}:
            verdict = BLESSED
        else:
            verdict = UNKNOWN
        self._return_memo[key] = verdict
        return verdict
