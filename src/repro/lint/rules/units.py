"""Unit-suffix mixing rule.

The codebase's unit convention (``docs/architecture.md``,
:mod:`repro.units`) encodes the unit in the identifier suffix:
``*_hz``/``*_mhz``/``*_ghz`` for frequency, ``*_w`` for power,
``*_j`` for energy, ``*_ns``/``*_us``/``*_ms``/``*_s`` for time. The
Haswell→Skylake survey lineage shows how silently mixed units (1/8-W
PL1 counts added to watts, microseconds compared against nanoseconds)
corrupt results without crashing. ``units-mix`` flags additive
arithmetic and comparisons between identifiers whose suffixes name
*different units of the same dimension* — the combination that is
always a bug unless a converter ran.

ALL_CAPS identifiers are exempt: conversion-factor constants like
``NS_PER_S`` are dimensionless ratios whose trailing token is not a
unit claim about the constant's value.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.lint.engine import FileContext, Finding, Rule, register

#: dimension -> unit suffixes (lowercase, as they appear after the last _).
_FAMILIES = {
    "frequency": frozenset({"hz", "khz", "mhz", "ghz"}),
    "power": frozenset({"w", "mw", "kw"}),
    "energy": frozenset({"j", "mj", "uj", "kj"}),
    "time": frozenset({"ns", "us", "ms", "s"}),
}
_SUFFIX_TO_FAMILY = {suffix: family
                     for family, suffixes in _FAMILIES.items()
                     for suffix in suffixes}


def _unit_of(node: ast.expr) -> tuple[str, str] | None:
    """(family, suffix) of an identifier operand, or None."""
    if isinstance(node, ast.Name):
        name = node.id
    elif isinstance(node, ast.Attribute):
        name = node.attr
    else:
        return None
    if name.isupper():          # conversion-factor constants (NS_PER_S)
        return None
    suffix = name.rsplit("_", 1)[-1].lower()
    if suffix == name.lower():  # no underscore: not suffix-conventioned
        return None
    family = _SUFFIX_TO_FAMILY.get(suffix)
    return (family, suffix) if family else None


@register
class UnitMixRule(Rule):
    id = "units-mix"
    description = ("additive arithmetic / comparison between different "
                   "units of the same dimension")
    hint = "convert one side through repro.units (e.g. units.ms, units.ghz)"
    node_types = (ast.BinOp, ast.Compare)

    def visit(self, ctx: FileContext, node: ast.AST) -> Iterable[Finding]:
        if isinstance(node, ast.BinOp):
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                return
            pairs = [(node.left, node.right)]
        else:  # Compare: check each adjacent operand pair
            operands = [node.left, *node.comparators]
            pairs = list(zip(operands, operands[1:]))
        for left, right in pairs:
            lhs, rhs = _unit_of(left), _unit_of(right)
            if lhs is None or rhs is None:
                continue
            if lhs[0] == rhs[0] and lhs[1] != rhs[1]:
                yield self.finding(
                    ctx, node,
                    f"mixes *_{lhs[1]} with *_{rhs[1]} ({lhs[0]}) without "
                    "a repro.units conversion")
