"""Rule families of ``repro-lint``.

Importing a module registers its rules with the engine registry:

* :mod:`repro.lint.rules.determinism` — ``det-wallclock``, ``det-rng``,
  ``det-id-key``, ``det-set-iter``
* :mod:`repro.lint.rules.units`       — ``units-mix``
* :mod:`repro.lint.rules.msr`         — ``msr-layout``
* :mod:`repro.lint.rules.epoch`       — ``epoch-bypass``
"""
