"""Rule families of ``repro-lint``.

Importing a module registers its rules with the engine registries
(per-file rules via :func:`~repro.lint.engine.register`, cross-file
project rules via :func:`~repro.lint.engine.register_project`):

* :mod:`repro.lint.rules.determinism`  — ``det-wallclock``,
  ``det-id-key``, ``det-set-iter``
* :mod:`repro.lint.rules.units`        — ``units-mix``
* :mod:`repro.lint.rules.msr`          — ``msr-layout``
* :mod:`repro.lint.rules.epoch`        — ``epoch-bypass``,
  ``rng-batch-bypass``
* :mod:`repro.lint.rules.trace_schema` — ``trace-schema-*``
* :mod:`repro.lint.rules.layering`     — ``arch-layering``,
  ``arch-cycle``, ``arch-sim-reach`` (project)
* :mod:`repro.lint.rules.seedflow`     — ``det-seed-flow`` (project)
* :mod:`repro.lint.rules.async_safety` — ``async-blocking``,
  ``async-condition``, ``async-fire-forget``, ``exec-picklable``
  (project)
"""
