"""``python -m repro.lint`` — same entry point as the ``repro-lint`` script."""

from repro.lint.cli import main

raise SystemExit(main())
