"""``repro-lint --graph``: the internal import graph, layer-colored.

Collapses the module-level import graph to package granularity (one
node per top two dotted components, ``repro.engine``), colors each node
by its layer from the ``[tool.repro-lint]`` layer map, and renders
either Graphviz ``dot`` or a Mermaid flowchart (the latter pastes
straight into ``docs/static_analysis.md``).  Edges that violate the
layer map come out red and bold — the picture is the review artifact
for architecture discussions.
"""

from __future__ import annotations

from repro.lint.engine import LintConfig
from repro.lint.project import ProjectIndex

#: one fill color per layer index, lowest layer first (colorblind-safe
#: light palette; unmapped packages stay grey).
_LAYER_COLORS = (
    "#dde8ff", "#cde8d8", "#fff2c2", "#ffd8b0",
    "#f3d1f4", "#d3f0f7", "#ffd0d0", "#e4e0d0",
)
_UNMAPPED_COLOR = "#e8e8e8"


def _package(module: str) -> str:
    parts = module.split(".")
    return ".".join(parts[:2]) if parts[0] == "repro" else parts[0]


def package_graph(index: ProjectIndex, config: LintConfig) \
        -> tuple[dict[str, int | None], list[tuple[str, str, bool]]]:
    """(package -> layer index or None, [(src, dst, violates)])."""
    packages: dict[str, int | None] = {}
    for facts in index.modules.values():
        package = _package(facts.module)
        layer = config.layer_of(facts.module)
        packages.setdefault(package, layer[0] if layer else None)
    edges: dict[tuple[str, str], bool] = {}
    for module, targets in index.import_edges().items():
        source_pkg = _package(module)
        source_layer = config.layer_of(module)
        for target, _ in targets:
            target_pkg = _package(target)
            if target_pkg == source_pkg:
                continue
            target_layer = config.layer_of(target)
            violates = (source_layer is not None and target_layer is not None
                        and target_layer[0] > source_layer[0])
            key = (source_pkg, target_pkg)
            edges[key] = edges.get(key, False) or violates
    return packages, sorted((s, d, v) for (s, d), v in edges.items())


def _color(layer: int | None) -> str:
    if layer is None:
        return _UNMAPPED_COLOR
    return _LAYER_COLORS[layer % len(_LAYER_COLORS)]


def render_dot(index: ProjectIndex, config: LintConfig) -> str:
    packages, edges = package_graph(index, config)
    lines = [
        "digraph imports {",
        "  rankdir=BT;",
        '  node [shape=box, style="filled,rounded", '
        'fontname="Helvetica"];',
    ]
    layer_names = {i: name for i, (name, _) in enumerate(config.layers)}
    by_layer: dict[int | None, list[str]] = {}
    for package, layer in sorted(packages.items()):
        by_layer.setdefault(layer, []).append(package)
    for layer in sorted(by_layer, key=lambda v: (v is None, v)):
        members = by_layer[layer]
        if layer is not None:
            lines.append(f'  subgraph "cluster_{layer}" {{')
            lines.append(f'    label="{layer_names.get(layer, layer)}"; '
                         'style=dashed; color="#bbbbbb";')
            indent = "    "
        else:
            indent = "  "
        for package in members:
            lines.append(f'{indent}"{package}" '
                         f'[fillcolor="{_color(layer)}"];')
        if layer is not None:
            lines.append("  }")
    for source, target, violates in edges:
        style = ' [color=red, penwidth=2.5]' if violates else ""
        lines.append(f'  "{source}" -> "{target}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def render_mermaid(index: ProjectIndex, config: LintConfig) -> str:
    packages, edges = package_graph(index, config)
    lines = ["flowchart BT"]
    layer_names = {i: name for i, (name, _) in enumerate(config.layers)}
    by_layer: dict[int | None, list[str]] = {}
    for package, layer in sorted(packages.items()):
        by_layer.setdefault(layer, []).append(package)

    def node_id(package: str) -> str:
        return package.replace(".", "_").replace("-", "_")

    for layer in sorted(by_layer, key=lambda v: (v is None, v)):
        members = by_layer[layer]
        if layer is not None:
            lines.append(f'  subgraph L{layer}["'
                         f'{layer_names.get(layer, layer)}"]')
            indent = "    "
        else:
            indent = "  "
        for package in members:
            lines.append(f'{indent}{node_id(package)}["{package}"]')
        if layer is not None:
            lines.append("  end")
    bad_edges: list[int] = []
    for position, (source, target, violates) in enumerate(edges):
        lines.append(f"  {node_id(source)} --> {node_id(target)}")
        if violates:
            bad_edges.append(position)
    for layer, members in by_layer.items():
        for package in members:
            lines.append(f"  style {node_id(package)} "
                         f"fill:{_color(layer)}")
    for position in bad_edges:
        lines.append(f"  linkStyle {position} stroke:red,stroke-width:3px")
    return "\n".join(lines) + "\n"
