"""The ``repro-lint`` command-line interface.

::

    repro-lint [paths ...] [--select ID ...] [--ignore ID ...]
               [--list-rules] [--root DIR]

With no paths, lints the directories configured in
``[tool.repro-lint] paths`` of pyproject.toml (default: src, scripts,
benchmarks, examples). Exit status: 0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import LintConfig, all_rules, lint_paths


def _find_root(start: Path) -> Path:
    """Nearest ancestor containing pyproject.toml (else the start)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="invariant-enforcing static analysis for the repro tree")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: configured "
                             "paths from pyproject.toml)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rule ids")
    parser.add_argument("--ignore", nargs="+", metavar="RULE", default=[],
                        help="skip these rule ids")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: nearest ancestor "
                             "of cwd with a pyproject.toml)")
    args = parser.parse_args(argv)

    rules = all_rules()
    if args.list_rules:
        width = max(len(rule_id) for rule_id in rules)
        for rule_id in sorted(rules):
            print(f"{rule_id:<{width}}  {rules[rule_id].description}")
        return 0

    known = set(rules)
    for rule_id in (*(args.select or ()), *args.ignore):
        if rule_id not in known:
            parser.error(f"unknown rule id {rule_id!r}; "
                         f"valid: {sorted(known)}")
    if args.select:
        rules = {rule_id: rule for rule_id, rule in rules.items()
                 if rule_id in args.select}
    rules = {rule_id: rule for rule_id, rule in rules.items()
             if rule_id not in args.ignore}

    root = args.root if args.root is not None else _find_root(Path.cwd())
    config = LintConfig.load(root)
    findings = lint_paths(args.paths or None, root=root, rules=rules,
                          config=config)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"repro-lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
