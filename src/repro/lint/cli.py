"""The ``repro-lint`` command-line interface.

::

    repro-lint [paths ...] [--select ID ...] [--ignore ID ...]
               [--format text|sarif] [--sarif-out FILE]
               [--baseline] [--update-baseline] [--fail-on-drift]
               [--graph dot|mermaid] [--no-cache]
               [--list-rules] [--root DIR]

With no paths, lints the directories configured in
``[tool.repro-lint] paths`` of pyproject.toml (default: src, scripts,
benchmarks, examples).  ``--baseline`` gates against the committed
``lint-baseline.json`` (only *new* findings fail); ``--fail-on-drift``
additionally fails when baseline entries went stale.  ``--graph`` dumps
the layer-colored import graph instead of linting.

Exit status: 0 clean, 1 findings, 2 usage error, 4 baseline drift.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.engine import (
    LintConfig,
    all_project_rules,
    all_rule_ids,
    all_rules,
)
from repro.lint.project import build_index, lint_project

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2
EXIT_DRIFT = 4


def _find_root(start: Path) -> Path:
    """Nearest ancestor containing pyproject.toml (else the start)."""
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def _select_rules(parser: argparse.ArgumentParser, select, ignore):
    """(file rules, project rules) filtered by --select/--ignore."""
    known = all_rule_ids() | {"suppression", "parse-error"}
    for rule_id in (*(select or ()), *ignore):
        if rule_id not in known:
            parser.error(f"unknown rule id {rule_id!r}; "
                         f"valid: {sorted(known)}")
    rules = all_rules()
    project_rules = all_project_rules()
    if select:
        wanted = set(select)
        rules = {rule_id: rule for rule_id, rule in rules.items()
                 if rule_id in wanted}
        project_rules = {
            rule_id: rule for rule_id, rule in project_rules.items()
            if wanted.intersection(rule.all_ids())}
    if ignore:
        dropped = set(ignore)
        rules = {rule_id: rule for rule_id, rule in rules.items()
                 if rule_id not in dropped}
        project_rules = {
            rule_id: rule for rule_id, rule in project_rules.items()
            if not dropped.issuperset(rule.all_ids())}
    return rules, project_rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="invariant-enforcing static analysis for the repro tree")
    parser.add_argument("paths", nargs="*",
                        help="files or directories (default: configured "
                             "paths from pyproject.toml)")
    parser.add_argument("--select", nargs="+", metavar="RULE",
                        help="run only these rule ids")
    parser.add_argument("--ignore", nargs="+", metavar="RULE", default=[],
                        help="skip these rule ids")
    parser.add_argument("--format", choices=("text", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--sarif-out", type=Path, metavar="FILE",
                        help="also write a SARIF report to FILE "
                             "(independent of --format)")
    parser.add_argument("--baseline", action="store_true",
                        help="gate against the committed baseline: only "
                             "findings not in it fail the run")
    parser.add_argument("--update-baseline", action="store_true",
                        help="rewrite the baseline file from the current "
                             "findings and exit 0")
    parser.add_argument("--fail-on-drift", action="store_true",
                        help="with --baseline: exit 4 when baseline "
                             "entries no longer occur in the tree")
    parser.add_argument("--graph", choices=("dot", "mermaid"),
                        metavar="FORMAT",
                        help="dump the layer-colored import graph "
                             "(dot|mermaid) instead of linting")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the phase-1 fact "
                             "cache")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--root", type=Path, default=None,
                        help="repository root (default: nearest ancestor "
                             "of cwd with a pyproject.toml)")
    args = parser.parse_args(argv)

    if args.list_rules:
        catalog: dict[str, str] = {
            rule_id: rule.description
            for rule_id, rule in all_rules().items()}
        for rule in all_project_rules().values():
            for rule_id in rule.all_ids():
                catalog.setdefault(rule_id, rule.description)
        width = max(len(rule_id) for rule_id in catalog)
        for rule_id in sorted(catalog):
            print(f"{rule_id:<{width}}  {catalog[rule_id]}")
        return EXIT_CLEAN

    rules, project_rules = _select_rules(parser, args.select, args.ignore)
    root = args.root if args.root is not None else _find_root(Path.cwd())
    config = LintConfig.load(root)
    use_cache = not args.no_cache

    if args.graph:
        from repro.lint.graph import render_dot, render_mermaid
        index = build_index(args.paths or None, root=root, rules=rules,
                            config=config, use_cache=use_cache)
        render = render_dot if args.graph == "dot" else render_mermaid
        sys.stdout.write(render(index, config))
        return EXIT_CLEAN

    findings, _index = lint_project(
        args.paths or None, root=root, rules=rules,
        project_rules=project_rules, config=config, use_cache=use_cache)

    if args.update_baseline:
        from repro.lint.baseline import write_baseline
        baseline_path = root / config.baseline
        write_baseline(baseline_path, findings)
        print(f"repro-lint: wrote {len(findings)} entr"
              f"{'y' if len(findings) == 1 else 'ies'} to "
              f"{baseline_path}", file=sys.stderr)
        return EXIT_CLEAN

    drift = False
    if args.baseline:
        from repro.lint.baseline import apply_baseline, load_baseline
        try:
            entries = load_baseline(root / config.baseline)
        except ValueError as exc:
            parser.error(str(exc))
        result = apply_baseline(findings, entries)
        findings = result.new
        if result.stale:
            drift = True
            for path, rule, message in result.stale:
                print(f"{path}: stale baseline entry ({rule}): {message}",
                      file=sys.stderr)

    if args.sarif_out is not None:
        from repro.lint.sarif import render_sarif
        args.sarif_out.parent.mkdir(parents=True, exist_ok=True)
        args.sarif_out.write_text(render_sarif(findings), encoding="utf-8")

    if args.format == "sarif":
        from repro.lint.sarif import render_sarif
        sys.stdout.write(render_sarif(findings))
    else:
        for finding in findings:
            print(finding.render())
    if findings:
        label = "new finding(s)" if args.baseline else "finding(s)"
        print(f"repro-lint: {len(findings)} {label}", file=sys.stderr)
        return EXIT_FINDINGS
    if drift and args.fail_on_drift:
        print("repro-lint: baseline drift — tree is cleaner than the "
              "committed baseline; run --update-baseline and commit",
              file=sys.stderr)
        return EXIT_DRIFT
    return EXIT_CLEAN


if __name__ == "__main__":
    raise SystemExit(main())
