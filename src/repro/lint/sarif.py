"""Minimal SARIF 2.1.0 emitter for lint findings.

SARIF (Static Analysis Results Interchange Format) is what CI dashboards
and code-scanning UIs ingest; ``repro-lint --format sarif`` produces one
run with the full rule catalog in ``tool.driver.rules`` and one result
per finding.  Only the fields consumers actually read are emitted — no
fixes, no code flows, no graphs.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.lint.engine import (
    Finding,
    all_project_rules,
    all_rules,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                "master/Schemata/sarif-schema-2.1.0.json")


def _rule_catalog() -> list[dict]:
    catalog: dict[str, dict] = {}
    for rule_id, rule in sorted(all_rules().items()):
        catalog[rule_id] = {
            "id": rule_id,
            "shortDescription": {"text": rule.description},
            "help": {"text": rule.hint},
        }
    for rule in all_project_rules().values():
        for rule_id in rule.all_ids():
            catalog.setdefault(rule_id, {
                "id": rule_id,
                "shortDescription": {"text": rule.description},
                "help": {"text": rule.hint},
            })
    catalog.setdefault("suppression", {
        "id": "suppression",
        "shortDescription": {"text": "suppression without justification"},
        "help": {"text": "append ' — <reason>' to the disable comment"},
    })
    return [catalog[rule_id] for rule_id in sorted(catalog)]


def _result(finding: Finding, rule_index: dict[str, int]) -> dict:
    return {
        "ruleId": finding.rule,
        "ruleIndex": rule_index.get(finding.rule, -1),
        "level": "error",
        "message": {"text": finding.message},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": finding.path},
                "region": {"startLine": max(finding.line, 1),
                           "startColumn": finding.col + 1},
            },
        }],
    }


def render_sarif(findings: Iterable[Finding]) -> str:
    """Findings as one pretty-printed SARIF 2.1.0 document."""
    rules = _rule_catalog()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro-lint",
                "informationUri":
                    "https://example.invalid/repro/docs/static_analysis.md",
                "rules": rules,
            }},
            "results": [_result(f, rule_index) for f in findings],
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
