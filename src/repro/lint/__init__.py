"""`repro-lint`: invariant-enforcing static analysis for this repository.

The simulation's guarantees — bit-identical fastpath parity, seeded
deterministic fault injection, MSR bitfield fidelity, epoch-cache
consistency — are behavioural invariants that example-based tests can
only sample. This package turns them into machine-checked *rules* that
run over the whole tree on every PR (``make lint``):

* ``det-*``     — determinism: no wall-clock, no ``id()``-keyed
                  containers, no bare set iteration, and
                  ``det-seed-flow`` interprocedural taint: every
                  generator must descend from a plan seed through
                  ``repro.engine.rng.make_rng``/``spawn_rng``.
* ``arch-*``    — architecture: the declarative layer map in
                  ``[tool.repro-lint]`` (imports point downward only),
                  import-cycle detection, and "the sim core never
                  reaches asyncio or wall-clock code" reachability.
* ``async-*`` / ``exec-picklable`` — concurrency safety: blocking
                  calls on the event loop, ``asyncio.Condition`` ops
                  outside their lock, fire-and-forget tasks,
                  unpicklable callables into process pools.
* ``units-mix`` — suffix-conventioned quantities (``*_hz``, ``*_w``,
                  ``*_us``) must not mix units without going through
                  :mod:`repro.units`.
* ``msr-layout``— the declarative register table in
                  :mod:`repro.hostif.msr_regs` must be self-consistent
                  and every hand-written mask/shift must match it.
* ``epoch-bypass`` — no writes that dodge the ``__setattr__``
                  interception feeding :class:`repro.engine.epoch.EpochCell`.
* ``rng-batch-bypass`` — no reaching into the
                  :class:`repro.engine.rng.DrawBatch` prefill buffer
                  outside ``repro/engine/rng.py``; ``take()`` is the
                  only draw-order-accounted consumer.
* ``trace-schema-*`` — the conformance event catalog in
                  :mod:`repro.conformance.schema` must stay versioned:
                  any wire-format edit requires a ``SCHEMA_VERSION``
                  bump with a matching digest in ``SCHEMA_HISTORY``.

See ``docs/static_analysis.md`` for the rule catalog and the
suppression policy (every inline suppression must carry a reason).
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rule_ids,
    all_rules,
    lint_paths,
    lint_source,
    register,
    register_project,
)
from repro.lint.project import ProjectIndex, build_index, lint_project

# Importing the rule modules registers them with the engine.
from repro.lint.rules import (  # noqa: F401
    async_safety,
    determinism,
    epoch,
    layering,
    msr,
    seedflow,
    trace_schema,
    units,
)

__all__ = [
    "Finding",
    "LintConfig",
    "ProjectIndex",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rule_ids",
    "all_rules",
    "build_index",
    "lint_paths",
    "lint_project",
    "lint_source",
    "register",
    "register_project",
]
