"""`repro-lint`: invariant-enforcing static analysis for this repository.

The simulation's guarantees — bit-identical fastpath parity, seeded
deterministic fault injection, MSR bitfield fidelity, epoch-cache
consistency — are behavioural invariants that example-based tests can
only sample. This package turns them into machine-checked *rules* that
run over the whole tree on every PR (``make lint``):

* ``det-*``     — determinism: no wall-clock, no unseeded RNG, no
                  ``id()``-keyed containers, no bare set iteration.
* ``units-mix`` — suffix-conventioned quantities (``*_hz``, ``*_w``,
                  ``*_us``) must not mix units without going through
                  :mod:`repro.units`.
* ``msr-layout``— the declarative register table in
                  :mod:`repro.hostif.msr_regs` must be self-consistent
                  and every hand-written mask/shift must match it.
* ``epoch-bypass`` — no writes that dodge the ``__setattr__``
                  interception feeding :class:`repro.engine.epoch.EpochCell`.
* ``trace-schema-*`` — the conformance event catalog in
                  :mod:`repro.conformance.schema` must stay versioned:
                  any wire-format edit requires a ``SCHEMA_VERSION``
                  bump with a matching digest in ``SCHEMA_HISTORY``.

See ``docs/static_analysis.md`` for the rule catalog and the
suppression policy (every inline suppression must carry a reason).
"""

from repro.lint.engine import (
    Finding,
    LintConfig,
    Rule,
    all_rules,
    lint_paths,
    lint_source,
    register,
)

# Importing the rule modules registers them with the engine.
from repro.lint.rules import (  # noqa: F401
    determinism,
    epoch,
    msr,
    trace_schema,
    units,
)

__all__ = [
    "Finding",
    "LintConfig",
    "Rule",
    "all_rules",
    "lint_paths",
    "lint_source",
    "register",
]
