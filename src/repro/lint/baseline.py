"""The committed findings baseline: CI fails only on *new* findings.

``lint-baseline.json`` pins the set of accepted findings as
``(path, rule, message)`` triples — deliberately line-free, so moving
code around a file does not churn the baseline.  Three operations:

* **gate** (``repro-lint --baseline``): findings absent from the
  baseline are *new* and fail the run; baselined findings are filtered
  out of the report.
* **drift** (``--baseline --fail-on-drift``): baseline entries that no
  longer occur in the tree are *stale* — the fix landed but the
  shrinkage was not committed.  CI's ``lint-baseline-drift`` job fails
  on them (exit 4) so the baseline only ever reflects reality.
* **update** (``--update-baseline``): rewrite the file from the current
  findings.

An empty baseline (the healthy state) is a committed, reviewable claim
that the tree is clean.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from repro.lint.engine import Finding

BASELINE_FORMAT = "repro-lint-baseline"
BASELINE_VERSION = 1

Entry = tuple[str, str, str]        # (path, rule, message)


def _entry(finding: Finding) -> Entry:
    return (finding.path, finding.rule, finding.message)


@dataclass
class BaselineResult:
    """Outcome of comparing current findings against the baseline."""

    new: list[Finding]              # findings not in the baseline
    stale: list[Entry]              # baseline entries no longer occurring
    matched: int                    # findings filtered by the baseline


def load_baseline(path: Path) -> list[Entry]:
    """Entries of a baseline file; a missing file is an empty baseline."""
    if not path.is_file():
        return []
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("format") != BASELINE_FORMAT:
        raise ValueError(f"{path}: not a {BASELINE_FORMAT} file")
    if data.get("version") != BASELINE_VERSION:
        raise ValueError(f"{path}: unsupported baseline version "
                         f"{data.get('version')!r}")
    return [(e["path"], e["rule"], e["message"]) for e in data["entries"]]


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    entries = sorted({_entry(f) for f in findings})
    payload = {
        "format": BASELINE_FORMAT,
        "version": BASELINE_VERSION,
        "entries": [{"path": p, "rule": r, "message": m}
                    for p, r, m in entries],
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")


def apply_baseline(findings: list[Finding],
                   entries: list[Entry]) -> BaselineResult:
    """Split findings into new vs baselined, and spot stale entries.

    Multiset semantics per triple: N baseline entries for the same
    triple absorb at most N occurrences; extras are new findings.
    """
    budget: dict[Entry, int] = {}
    for entry in entries:
        budget[entry] = budget.get(entry, 0) + 1
    new: list[Finding] = []
    matched = 0
    for finding in findings:
        key = _entry(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            matched += 1
        else:
            new.append(finding)
    stale = sorted(key for key, remaining in budget.items()
                   for _ in range(remaining) if remaining > 0)
    return BaselineResult(new=new, stale=stale, matched=matched)
