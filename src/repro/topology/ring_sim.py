"""Slotted-ring transaction simulation of the die interconnect.

The analytic bandwidth model (:mod:`repro.memory.bandwidth`) uses an
aggregate L3 transport limit per uncore GHz; this module derives that
behaviour from first principles: cache-line data flits circulating on
the bidirectional slotted rings of Fig. 1, with buffered queues bridging
partitions on the 12-/18-core dies.

Model: each ring direction is a slot array rotating one stop per uncore
cycle. L3 slices (co-located with core stops) inject response flits
toward requesting cores — address hashing makes the traffic all-to-all.
A flit takes the direction with the shorter path; cross-partition flits
route via a queue pair (FIFO, fixed dequeue latency). Delivered flits
are counted per core, and latency is accumulated per delivery.

Used by tests and the die-comparison benchmark to show: per-ring
bandwidth is bounded by slots x flit size x clock; larger dies pay more
hops (latency) but partitioned dies scale bandwidth with their two
rings; the queue bridge is the choke point for cross-partition traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.rng import make_rng
from repro.errors import ConfigurationError
from repro.topology.die import ComponentKind, Die

FLIT_BYTES = 32                      # half a cache line per slot


@dataclass(frozen=True)
class RingSimResult:
    cycles: int
    delivered_flits: int
    injected_flits: int
    mean_latency_cycles: float
    offered_rate: float              # flits/cycle offered per core

    @property
    def delivered_flits_per_cycle(self) -> float:
        return self.delivered_flits / self.cycles

    def bandwidth_gbs(self, uncore_hz: float) -> float:
        return (self.delivered_flits_per_cycle * FLIT_BYTES
                * uncore_hz / 1e9)


class _Ring:
    """One bidirectional slotted ring."""

    def __init__(self, n_stops: int, core_positions: list[int]) -> None:
        self.n = n_stops
        # slots[dir][pos] = destination stop index, -1 = empty
        self.slots = np.full((2, n_stops), -1, dtype=np.int64)
        self.birth = np.zeros((2, n_stops), dtype=np.int64)
        self.core_mask = np.zeros(n_stops, dtype=bool)
        self.core_mask[core_positions] = True

    def rotate(self) -> None:
        # direction 0 moves +1, direction 1 moves -1
        self.slots[0] = np.roll(self.slots[0], 1)
        self.birth[0] = np.roll(self.birth[0], 1)
        self.slots[1] = np.roll(self.slots[1], -1)
        self.birth[1] = np.roll(self.birth[1], -1)

    def deliver(self, now: int) -> tuple[int, int]:
        """Remove arrived flits; count only final (core-stop) deliveries.

        Flits addressed to a queue stop are the local leg of a
        cross-partition transfer — absorbed without counting (the FIFO
        schedules the far leg and carries the original birth time).
        """
        positions = np.arange(self.n)
        count = 0
        latency = 0
        for d in (0, 1):
            hit = self.slots[d] == positions
            final = hit & self.core_mask
            n_final = int(final.sum())
            if n_final:
                latency += int((now - self.birth[d][final]).sum())
                count += n_final
            self.slots[d][hit] = -1
        return count, latency

    def try_inject(self, pos: int, dst: int, now: int,
                   birth: int | None = None) -> bool:
        """Inject at ``pos`` toward ``dst`` using the shorter direction."""
        fwd = (dst - pos) % self.n
        bwd = (pos - dst) % self.n
        order = (0, 1) if fwd <= bwd else (1, 0)
        for d in order:
            if self.slots[d][pos] == -1:
                self.slots[d][pos] = dst
                self.birth[d][pos] = now if birth is None else birth
                return True
        return False


class RingSimulator:
    """Drives uniform all-to-all L3 response traffic over a die."""

    def __init__(self, die: Die, seed: int = 0,
                 queue_latency_cycles: int = 2,
                 queue_depth: int = 8) -> None:
        self.die = die
        self.rng = make_rng(seed)
        self.queue_latency = queue_latency_cycles
        self.queue_depth = queue_depth
        # stop layout per partition: index components within their ring
        self._stop_index: dict[str, tuple[int, int]] = {}
        self.rings: list[_Ring] = []
        enabled = {c.name for c in die.enabled_cores}
        for p_idx, part in enumerate(die.partitions):
            core_positions = []
            for s_idx, comp in enumerate(part.components):
                self._stop_index[comp.name] = (p_idx, s_idx)
                if comp.kind is ComponentKind.CORE and comp.name in enabled:
                    core_positions.append(s_idx)
            self.rings.append(_Ring(part.n_stops, core_positions))
        # queue stops bridging partitions: (ring a, pos a, ring b, pos b)
        self.bridges: list[tuple[int, int, int, int]] = []
        for a, b in die.queue_pairs:
            pa, ia = self._stop_index[a.name]
            pb, ib = self._stop_index[b.name]
            self.bridges.append((pa, ia, pb, ib))
        # in-flight cross-ring transfers:
        # (ready_cycle, ring, pos, dst, original_birth)
        self._queue: list[tuple[int, int, int, int, int]] = []

    def core_stops(self) -> list[tuple[int, int]]:
        out = []
        for comp in self.die.enabled_cores:
            out.append(self._stop_index[comp.name])
        return out

    def run(self, offered_rate: float, cycles: int = 4000) -> RingSimResult:
        """Offer ``offered_rate`` response flits/cycle per enabled core."""
        if not (0.0 < offered_rate <= 2.0):
            raise ConfigurationError("offered rate must be in (0, 2]")
        cores = self.core_stops()
        n_cores = len(cores)
        delivered = 0
        injected = 0
        latency_sum = 0
        # credit accumulators implement fractional rates deterministically
        credit = np.zeros(n_cores)

        for now in range(cycles):
            for ring in self.rings:
                ring.rotate()
            for ring in self.rings:
                c, lat = ring.deliver(now)
                delivered += c
                latency_sum += lat

            # cross-ring queue: release transfers whose latency elapsed
            still: list[tuple[int, int, int, int, int]] = []
            for ready, ring_idx, pos, dst, birth in self._queue:
                if ready <= now and self.rings[ring_idx].try_inject(
                        pos, dst, now, birth=birth):
                    continue
                still.append((max(ready, now), ring_idx, pos, dst, birth))
            self._queue = still

            # inject new response flits toward each core
            credit += offered_rate
            for i, (p_dst, s_dst) in enumerate(cores):
                while credit[i] >= 1.0:
                    src = cores[int(self.rng.integers(0, n_cores))]
                    if self._inject_from(src, (p_dst, s_dst), now):
                        injected += 1
                        credit[i] -= 1.0
                    else:
                        break     # ring full at the source; retry next cycle

        mean_lat = latency_sum / delivered if delivered else 0.0
        return RingSimResult(cycles=cycles, delivered_flits=delivered,
                             injected_flits=injected,
                             mean_latency_cycles=mean_lat,
                             offered_rate=offered_rate)

    def _inject_from(self, src: tuple[int, int], dst: tuple[int, int],
                     now: int) -> bool:
        p_src, s_src = src
        p_dst, s_dst = dst
        if p_src == p_dst:
            return self.rings[p_src].try_inject(s_src, s_dst, now)
        # cross-partition: ride to the nearest local queue stop, then the
        # FIFO re-injects on the far ring after the dequeue latency
        bridge = self._nearest_bridge(p_src, s_src)
        if bridge is None or len(self._queue) >= self.queue_depth:
            return False
        local_queue_pos, far_ring, far_pos = bridge
        if not self.rings[p_src].try_inject(s_src, local_queue_pos, now):
            return False
        hop = min((local_queue_pos - s_src) % self.rings[p_src].n,
                  (s_src - local_queue_pos) % self.rings[p_src].n)
        ready = now + hop + self.queue_latency
        self._queue.append((ready, far_ring, far_pos, s_dst, now))
        return True

    def _nearest_bridge(self, p_src: int,
                        s_src: int) -> tuple[int, int, int] | None:
        best = None
        best_hop = None
        for ring_a, pos_a, ring_b, pos_b in self.bridges:
            if ring_a == p_src:
                local, far_ring, far_pos = pos_a, ring_b, pos_b
            elif ring_b == p_src:
                local, far_ring, far_pos = pos_b, ring_a, pos_a
            else:
                continue
            n = self.rings[p_src].n
            hop = min((local - s_src) % n, (s_src - local) % n)
            if best_hop is None or hop < best_hop:
                best_hop = hop
                best = (local, far_ring, far_pos)
        return best


def saturation_bandwidth_gbs(die: Die, uncore_hz: float,
                             cycles: int = 3000, seed: int = 0) -> float:
    """Saturated aggregate data bandwidth of a die's interconnect."""
    sim = RingSimulator(die, seed=seed)
    result = sim.run(offered_rate=2.0, cycles=cycles)
    return result.bandwidth_gbs(uncore_hz)
