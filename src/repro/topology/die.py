"""Die/ring data structures.

Haswell-EP uses bidirectional rings to connect core/L3-slice stops with
the uncore agents (IMC, QPI, PCIe). Larger dies are split into two ring
partitions joined by buffered queues (Fig. 1); each partition owns one
integrated memory controller with two DRAM channels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import networkx as nx

from repro.errors import ConfigurationError


class ComponentKind(enum.Enum):
    CORE = "core"            # core + its co-located L3 slice ring stop
    IMC = "imc"              # integrated memory controller (2 channels)
    QPI = "qpi"
    PCIE = "pcie"
    QUEUE = "queue"          # inter-partition buffered queue stop


@dataclass(frozen=True)
class DieComponent:
    """One ring stop."""

    kind: ComponentKind
    index: int               # global index within its kind
    partition: int

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.index}"


@dataclass
class RingPartition:
    """One bidirectional ring and the stops attached to it."""

    index: int
    components: list[DieComponent] = field(default_factory=list)

    @property
    def cores(self) -> list[DieComponent]:
        return [c for c in self.components if c.kind is ComponentKind.CORE]

    @property
    def imcs(self) -> list[DieComponent]:
        return [c for c in self.components if c.kind is ComponentKind.IMC]

    @property
    def n_stops(self) -> int:
        return len(self.components)


@dataclass
class Die:
    """A full die: partitions, queues linking them, and the derived graph."""

    name: str
    n_cores: int             # enabled cores (a die variant may fuse some off)
    partitions: list[RingPartition]
    queue_pairs: list[tuple[DieComponent, DieComponent]]
    dram_channels_per_imc: int = 2

    def __post_init__(self) -> None:
        total = sum(len(p.cores) for p in self.partitions)
        if total < self.n_cores:
            raise ConfigurationError(
                f"die {self.name}: {self.n_cores} enabled cores but only "
                f"{total} core stops")

    @property
    def enabled_cores(self) -> list[DieComponent]:
        cores = [c for p in self.partitions for c in p.cores]
        cores.sort(key=lambda c: c.index)
        return cores[: self.n_cores]

    @property
    def n_partitions(self) -> int:
        return len(self.partitions)

    @property
    def n_imcs(self) -> int:
        return sum(len(p.imcs) for p in self.partitions)

    @property
    def dram_channels(self) -> int:
        return self.n_imcs * self.dram_channels_per_imc

    def to_graph(self) -> nx.Graph:
        """The die as an undirected graph: ring edges + queue edges.

        Each partition's stops form a cycle (the bidirectional ring);
        queue pairs bridge partitions. Edge attribute ``kind`` is ``ring``
        or ``queue``.
        """
        graph = nx.Graph()
        for part in self.partitions:
            stops = part.components
            graph.add_nodes_from((s.name, {"component": s}) for s in stops)
            n = len(stops)
            for i, stop in enumerate(stops):
                nxt = stops[(i + 1) % n]
                graph.add_edge(stop.name, nxt.name, kind="ring")
        for a, b in self.queue_pairs:
            graph.add_edge(a.name, b.name, kind="queue")
        return graph
