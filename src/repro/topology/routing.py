"""Ring routing helpers: hop counts and shortest paths on a die graph.

Used by the topology benchmarks and the L3 transport model (average
core-to-L3-slice distance grows with die size, one reason large dies need
the queue-bridged layout the paper describes). In the default hardware
configuration this complexity is invisible to software — the paper notes
this — so these helpers are analysis tools, not simulation state.

The one mutable piece is :class:`LinkDerate`: a degradation knob on the
cross-socket (QPI) link that the fault injector drives for NUMA-link
faults. A derate scales link bandwidth down and adds per-hop latency;
the NUMA placement model consults it when evaluating remote traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ConfigurationError
from repro.topology.die import Die


@dataclass
class LinkDerate:
    """Mutable degradation state of the cross-socket link.

    ``bandwidth_factor`` multiplies the effective link data bandwidth
    (1.0 = healthy); ``latency_add_ns`` is added to every remote hop.
    """

    bandwidth_factor: float = 1.0
    latency_add_ns: float = 0.0

    def degrade(self, bandwidth_factor: float = 1.0,
                latency_add_ns: float = 0.0) -> None:
        if not 0.0 < bandwidth_factor <= 1.0:
            raise ConfigurationError(
                f"bandwidth factor {bandwidth_factor} outside (0, 1]")
        if latency_add_ns < 0.0:
            raise ConfigurationError("latency adder must be >= 0")
        self.bandwidth_factor = bandwidth_factor
        self.latency_add_ns = latency_add_ns

    def restore(self) -> None:
        self.bandwidth_factor = 1.0
        self.latency_add_ns = 0.0

    @property
    def healthy(self) -> bool:
        return self.bandwidth_factor == 1.0 and self.latency_add_ns == 0.0


def derated_path_latency_ns(die: Die, src_name: str, dst_name: str,
                            ns_per_hop: float,
                            derate: LinkDerate | None = None) -> float:
    """Stop-to-stop latency with the derate's per-path adder applied."""
    base = hop_count(die, src_name, dst_name) * ns_per_hop
    if derate is None:
        return base
    return base + derate.latency_add_ns


def derated_link_bandwidth_gbs(base_gbs: float,
                               derate: LinkDerate | None = None) -> float:
    """Effective link bandwidth after any active derate."""
    if derate is None:
        return base_gbs
    return base_gbs * derate.bandwidth_factor


def ring_path(die: Die, src_name: str, dst_name: str) -> list[str]:
    """Shortest stop-to-stop path on the die."""
    return nx.shortest_path(die.to_graph(), src_name, dst_name)


def hop_count(die: Die, src_name: str, dst_name: str) -> int:
    """Number of ring/queue hops between two stops."""
    return len(ring_path(die, src_name, dst_name)) - 1


def average_core_l3_hops(die: Die) -> float:
    """Mean hop distance from an enabled core to every other core's L3 slice.

    L3 slices are co-located with core ring stops, so the core-to-core
    distance distribution is the L3 access distance distribution under
    the default address-hashed slice interleaving.
    """
    graph = die.to_graph()
    cores = [c.name for c in die.enabled_cores]
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    total = 0
    pairs = 0
    for a in cores:
        for b in cores:
            if a != b:
                total += lengths[a][b]
                pairs += 1
    return total / pairs if pairs else 0.0


def average_core_imc_hops(die: Die) -> float:
    """Mean hop distance from an enabled core to its nearest IMC."""
    graph = die.to_graph()
    imcs = [c.name for p in die.partitions for c in p.imcs]
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    dists = [min(lengths[c.name][imc] for imc in imcs)
             for c in die.enabled_cores]
    return sum(dists) / len(dists) if dists else 0.0
