"""Ring routing helpers: hop counts and shortest paths on a die graph.

Used by the topology benchmarks and the L3 transport model (average
core-to-L3-slice distance grows with die size, one reason large dies need
the queue-bridged layout the paper describes). In the default hardware
configuration this complexity is invisible to software — the paper notes
this — so these helpers are analysis tools, not simulation state.
"""

from __future__ import annotations

import networkx as nx

from repro.topology.die import Die


def ring_path(die: Die, src_name: str, dst_name: str) -> list[str]:
    """Shortest stop-to-stop path on the die."""
    return nx.shortest_path(die.to_graph(), src_name, dst_name)


def hop_count(die: Die, src_name: str, dst_name: str) -> int:
    """Number of ring/queue hops between two stops."""
    return len(ring_path(die, src_name, dst_name)) - 1


def average_core_l3_hops(die: Die) -> float:
    """Mean hop distance from an enabled core to every other core's L3 slice.

    L3 slices are co-located with core ring stops, so the core-to-core
    distance distribution is the L3 access distance distribution under
    the default address-hashed slice interleaving.
    """
    graph = die.to_graph()
    cores = [c.name for c in die.enabled_cores]
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    total = 0
    pairs = 0
    for a in cores:
        for b in cores:
            if a != b:
                total += lengths[a][b]
                pairs += 1
    return total / pairs if pairs else 0.0


def average_core_imc_hops(die: Die) -> float:
    """Mean hop distance from an enabled core to its nearest IMC."""
    graph = die.to_graph()
    imcs = [c.name for p in die.partitions for c in p.imcs]
    lengths = dict(nx.all_pairs_shortest_path_length(graph))
    dists = [min(lengths[c.name][imc] for imc in imcs)
             for c in die.enabled_cores]
    return sum(dists) / len(dists) if dists else 0.0
