"""On-die ring-interconnect topology (paper Fig. 1)."""

from repro.topology.die import (
    ComponentKind,
    DieComponent,
    RingPartition,
    Die,
)
from repro.topology.builder import build_haswell_die, DIE_VARIANTS
from repro.topology.routing import (
    hop_count,
    average_core_l3_hops,
    average_core_imc_hops,
    ring_path,
)
from repro.topology.ring_sim import (
    RingSimulator,
    RingSimResult,
    saturation_bandwidth_gbs,
    FLIT_BYTES,
)

__all__ = [
    "ComponentKind",
    "DieComponent",
    "RingPartition",
    "Die",
    "build_haswell_die",
    "DIE_VARIANTS",
    "hop_count",
    "average_core_l3_hops",
    "average_core_imc_hops",
    "ring_path",
    "RingSimulator",
    "RingSimResult",
    "saturation_bandwidth_gbs",
    "FLIT_BYTES",
]
