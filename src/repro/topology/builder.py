"""Constructors for the three Haswell-EP die layouts (Section II-A, Fig. 1).

* 8-core die — a single bidirectional ring (4/6/8-core SKUs)
* 12-core die — an 8-core and a 4-core partition (10/12-core SKUs)
* 18-core die — an 8-core and a 10-core partition (14/16/18-core SKUs)

Each partition carries one IMC (two DRAM channels); partition 0
additionally hosts the QPI and PCIe agents. Partitioned dies are joined
by two buffered queue pairs.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.topology.die import ComponentKind, Die, DieComponent, RingPartition

# SKU core count -> (die name, cores per partition)
DIE_VARIANTS: dict[int, tuple[str, tuple[int, ...]]] = {
    4: ("8-core die", (8,)),
    6: ("8-core die", (8,)),
    8: ("8-core die", (8,)),
    10: ("12-core die", (8, 4)),
    12: ("12-core die", (8, 4)),
    14: ("18-core die", (8, 10)),
    16: ("18-core die", (8, 10)),
    18: ("18-core die", (8, 10)),
}


def build_haswell_die(n_cores: int) -> Die:
    """Build the die used by an ``n_cores``-core Haswell-EP SKU."""
    if n_cores not in DIE_VARIANTS:
        raise ConfigurationError(
            f"no Haswell-EP die variant for {n_cores} cores "
            f"(valid: {sorted(DIE_VARIANTS)})")
    die_name, layout = DIE_VARIANTS[n_cores]

    partitions: list[RingPartition] = []
    core_index = 0
    for part_idx, cores_here in enumerate(layout):
        part = RingPartition(index=part_idx)
        # Uncore agents sit at the "top" of the ring.
        part.components.append(
            DieComponent(ComponentKind.IMC, part_idx, part_idx))
        if part_idx == 0:
            part.components.append(DieComponent(ComponentKind.QPI, 0, 0))
            part.components.append(DieComponent(ComponentKind.PCIE, 0, 0))
        for _ in range(cores_here):
            part.components.append(
                DieComponent(ComponentKind.CORE, core_index, part_idx))
            core_index += 1
        partitions.append(part)

    queue_pairs: list[tuple[DieComponent, DieComponent]] = []
    if len(partitions) == 2:
        # Two queue pairs bridge the rings (Fig. 1 shows four queue stops).
        for q_idx in range(2):
            q_a = DieComponent(ComponentKind.QUEUE, 2 * q_idx, 0)
            q_b = DieComponent(ComponentKind.QUEUE, 2 * q_idx + 1, 1)
            partitions[0].components.append(q_a)
            partitions[1].components.append(q_b)
            queue_pairs.append((q_a, q_b))

    return Die(name=die_name, n_cores=n_cores, partitions=partitions,
               queue_pairs=queue_pairs)
