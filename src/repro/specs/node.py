"""Compute-node specifications (paper Table II and the Fig. 2a reference).

A :class:`NodeSpec` describes the whole machine an LMG450 power meter is
attached to: the sockets, DRAM, mainboard consumers, the PSU transfer
function, and per-socket manufacturing skew.

AC power model
--------------
The node's AC draw is ``P_AC = c2*P_dc^2 + c1*P_dc + c0`` with
``P_dc = P_rapl_visible + board_dc_w``. For the Haswell test node the
coefficients were chosen so that the paper's own quadratic fit of AC vs
RAPL (footnote 2: ``P_AC = 0.0003 P^2 + 1.097 P + 225.7 W``) falls out of
the simulation: ``c2 = 0.0003``, ``c1 = 1.097 - 2*board_dc*c2`` and
``c0`` absorbing fans-at-maximum plus PSU standby losses. With these
values the simulated idle node draws ~261.5 W AC (Table II) and a
FIRESTARTER run draws ~561 W (Table V).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.specs.cpu import CpuSpec, E5_2680_V3, E5_2670_SNB, X5670_WSM


@dataclass(frozen=True)
class NodeSpec:
    """One compute node (chassis-level view)."""

    name: str
    cpu: CpuSpec
    n_sockets: int
    dram_gib_per_socket: int
    # Voltage skew per socket: the paper found that the cores of processor 0
    # run at higher voltage for the same p-state than processor 1's, which
    # makes socket 0 less efficient and gives it lower sustained frequencies
    # (Section III, Table IV).
    socket_voltage_offsets_v: tuple[float, ...]
    board_dc_w: float               # mainboard consumers outside RAPL domains
    psu_c0_w: float                 # AC model constant term (fans, standby)
    psu_c1: float                   # AC model linear coefficient
    psu_c2_per_w: float             # AC model quadratic coefficient
    fan_setting: str = "maximum"

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigurationError("a node needs at least one socket")
        if len(self.socket_voltage_offsets_v) != self.n_sockets:
            raise ConfigurationError(
                "need one voltage offset per socket "
                f"({self.n_sockets} sockets, "
                f"{len(self.socket_voltage_offsets_v)} offsets)"
            )

    @property
    def total_cores(self) -> int:
        return self.n_sockets * self.cpu.n_cores

    @property
    def total_threads(self) -> int:
        return self.total_cores * self.cpu.smt

    def ac_power_w(self, dc_rapl_visible_w: float) -> float:
        """Node AC draw for a given total RAPL-visible DC power."""
        p_dc = dc_rapl_visible_w + self.board_dc_w
        return self.psu_c0_w + self.psu_c1 * p_dc + self.psu_c2_per_w * p_dc * p_dc


# The bullx R421 E4 node of Section III: 2x E5-2680 v3, fans at maximum.
HASWELL_TEST_NODE = NodeSpec(
    name="bullx R421 E4 (2x E5-2680 v3)",
    cpu=E5_2680_V3,
    n_sockets=2,
    dram_gib_per_socket=32,
    socket_voltage_offsets_v=(0.012, 0.0),
    board_dc_w=25.0,
    psu_c0_w=198.46,
    psu_c1=1.082,
    psu_c2_per_w=0.0003,
    fan_setting="maximum",
)

# The Sandy Bridge-EP reference node of Fig. 2a ([20]); normal fan speeds,
# nearly linear PSU over the measured range.
SANDY_BRIDGE_TEST_NODE = NodeSpec(
    name="Sandy Bridge-EP reference (2x E5-2670)",
    cpu=E5_2670_SNB,
    n_sockets=2,
    dram_gib_per_socket=32,
    socket_voltage_offsets_v=(0.0, 0.0),
    board_dc_w=22.0,
    psu_c0_w=58.0,
    psu_c1=1.12,
    psu_c2_per_w=0.00005,
    fan_setting="normal",
)

# A Westmere-EP node used only for the Fig. 7 cross-generation bandwidth
# comparison.
WESTMERE_TEST_NODE = NodeSpec(
    name="Westmere-EP reference (2x X5670)",
    cpu=X5670_WSM,
    n_sockets=2,
    dram_gib_per_socket=24,
    socket_voltage_offsets_v=(0.0, 0.0),
    board_dc_w=20.0,
    psu_c0_w=55.0,
    psu_c1=1.15,
    psu_c2_per_w=0.00006,
    fan_setting="normal",
)
