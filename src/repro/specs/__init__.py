"""Machine specifications and calibration constants.

Everything the paper states about the hardware — Table I microarchitecture
parameters, the Table II test-system configuration, frequency tables, the
TDP, and the calibration constants our behavioral models were fitted to —
lives in this package so the rest of the code base contains no magic
numbers.
"""

from repro.specs.microarch import (
    MicroarchSpec,
    SANDY_BRIDGE_EP,
    HASWELL_EP,
    WESTMERE_EP,
    MICROARCHES,
)
from repro.specs.vf import VfCurve
from repro.specs.cpu import (
    CpuSpec,
    TurboTable,
    CStateLatencySpec,
    PowerCoefficients,
    E5_2680_V3,
    E5_2670_SNB,
    X5670_WSM,
)
from repro.specs.node import (
    NodeSpec,
    HASWELL_TEST_NODE,
    SANDY_BRIDGE_TEST_NODE,
    WESTMERE_TEST_NODE,
)
from repro.specs.variation import (
    DEFAULT_VARIATION,
    NodeVariation,
    VariationModel,
    draw_variation,
)

__all__ = [
    "MicroarchSpec",
    "SANDY_BRIDGE_EP",
    "HASWELL_EP",
    "WESTMERE_EP",
    "MICROARCHES",
    "VfCurve",
    "CpuSpec",
    "TurboTable",
    "CStateLatencySpec",
    "PowerCoefficients",
    "E5_2680_V3",
    "E5_2670_SNB",
    "X5670_WSM",
    "NodeSpec",
    "HASWELL_TEST_NODE",
    "SANDY_BRIDGE_TEST_NODE",
    "WESTMERE_TEST_NODE",
    "DEFAULT_VARIATION",
    "NodeVariation",
    "VariationModel",
    "draw_variation",
]
