"""Processor model specifications (SKU-level).

A :class:`CpuSpec` bundles everything a simulated socket needs: the
selectable p-states, the turbo and AVX frequency tables, the TDP, the V/f
curves and the calibrated power-model coefficients. The Xeon E5-2680 v3
instance reproduces the paper's test system (Table II); the Sandy Bridge
and Westmere instances support the cross-generation comparisons in
Figs. 2, 5, 6 and 7.

Calibration notes
-----------------
The power coefficients were solved from the paper's own measurements
(see DESIGN.md section 1): the FIRESTARTER equilibrium points of Table IV
(P(2.31 GHz core, 2.33 GHz uncore) = P(2.19, 2.80) = TDP = 120 W,
P(2.09, 3.00) < 120 W) pin the core/uncore dynamic-power ratio, and the
idle point of Table II (261.5 W AC at the wall) pins the static terms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.specs.microarch import MicroarchSpec, HASWELL_EP, SANDY_BRIDGE_EP, WESTMERE_EP
from repro.specs.vf import VfCurve
from repro.units import ghz, us, ms


@dataclass(frozen=True)
class TurboTable:
    """Maximum turbo frequency by number of active cores (1-indexed).

    ``bins[n-1]`` is the cap with ``n`` active cores. Separate tables exist
    for non-AVX and AVX operation (Section II-F: AVX turbo frequencies are
    defined for various core counts).
    """

    non_avx_hz: tuple[float, ...]
    avx_hz: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.non_avx_hz) != len(self.avx_hz):
            raise ConfigurationError("turbo tables must cover the same core counts")
        for table in (self.non_avx_hz, self.avx_hz):
            if any(b < a for a, b in zip(table[1:], table[:-1], strict=False)):
                # bins must be non-increasing with more active cores
                raise ConfigurationError("turbo bins must be non-increasing")

    def limit(self, active_cores: int, avx: bool) -> float:
        """Turbo frequency cap (Hz) for ``active_cores`` active cores."""
        if active_cores < 1:
            raise ConfigurationError("active_cores must be >= 1")
        table = self.avx_hz if avx else self.non_avx_hz
        idx = min(active_cores, len(table)) - 1
        return table[idx]

    @property
    def max_hz(self) -> float:
        return self.non_avx_hz[0]


@dataclass(frozen=True)
class CStateLatencySpec:
    """Wake-latency model constants, in microseconds (Figs. 5 and 6).

    The model implemented in :mod:`repro.cstates.latency` consumes these.
    All values describe time to return to C0 as measured by a waker/wakee
    pair.
    """

    c1_local_us: float              # at max frequency
    c1_freq_slope_us_per_ghz: float  # added per GHz *below* max frequency
    c1_remote_extra_us: float
    c3_local_us: float
    c3_high_freq_penalty_us: float  # added when f > c3 threshold
    c3_freq_threshold_ghz: float
    c3_remote_extra_us: float
    pc3_extra_low_us: float         # package C3 adder at max frequency
    pc3_extra_high_us: float        # package C3 adder at min frequency
    c6_extra_min_us: float          # C6-over-C3 adder at max frequency
    c6_extra_max_us: float          # C6-over-C3 adder at min frequency
    pc6_extra_us: float             # package C6 adder over package C3
    acpi_c3_us: float               # what the ACPI table *claims*
    acpi_c6_us: float


@dataclass(frozen=True)
class PowerCoefficients:
    """Calibrated CMOS power-model coefficients (per socket).

    ``P_pkg = static + core_dyn * sum_i activity_i * f_i * V(f_i)^2
             + uncore_dyn * f_u * Vu(f_u)^2``
    with frequencies in GHz and voltages in volts.
    """

    static_w: float                 # leakage + always-on at reference voltage
    core_dyn_w_per_ghz_v2: float    # per core, at activity 1.0
    uncore_dyn_w_per_ghz_v2: float
    dram_idle_w: float              # per socket's DRAM channels
    dram_w_per_gbs: float           # DRAM power per GB/s of traffic


@dataclass(frozen=True)
class CpuSpec:
    """One processor SKU."""

    model: str
    microarch: MicroarchSpec
    n_cores: int
    smt: int                        # hardware threads per core
    nominal_hz: float
    pstates_hz: tuple[float, ...]   # selectable p-states, ascending
    turbo: TurboTable
    avx_base_hz: float | None       # None before Haswell (no AVX frequency)
    tdp_w: float
    uncore_min_hz: float
    uncore_max_hz: float
    vf_core: VfCurve
    vf_uncore: VfCurve
    power: PowerCoefficients
    cstate_latency: CStateLatencySpec
    # UFS behaviour for the no-memory-stall scenario (Table III). Keys are
    # core-frequency settings in Hz, values are the uncore frequency the
    # hardware chooses on the *active* socket. ``None`` key = turbo setting.
    ufs_no_stall_active_hz: dict[float | None, float] = field(default_factory=dict)
    ufs_no_stall_passive_hz: dict[float | None, float] = field(default_factory=dict)
    pcu_quantum_ns: int = us(500)   # p-state grant opportunity period (Fig. 4)
    # Voltage-ramp time once granted. Small on Haswell: the ~21 us floor of
    # Fig. 3 is the FTaLaT verification-window granularity, not the ramp.
    pstate_switch_time_ns: int = us(1)
    rapl_update_period_ns: int = ms(1)
    eet_poll_period_ns: int = ms(1)       # EET stall polling period (patent)
    avx_relax_delay_ns: int = ms(1)       # return to non-AVX mode after 1 ms
    acpi_pstate_latency_ns: int = us(10)  # what ACPI *claims* (Section VI-A)
    l1_kib: int = 32
    l2_kib: int = 256
    l3_mib_per_core: float = 2.5
    has_pp0_rapl: bool = False
    rapl_energy_unit_j: float = 61e-6     # 1/2^14 J, package domain
    rapl_dram_energy_unit_j: float = 15.3e-6  # Haswell-EP DRAM unit (Section IV)
    pstate_granted_immediately: bool = False  # pre-Haswell behaviour

    def __post_init__(self) -> None:
        if self.n_cores < 1 or self.smt < 1:
            raise ConfigurationError("core/thread counts must be positive")
        if list(self.pstates_hz) != sorted(self.pstates_hz):
            raise ConfigurationError("pstates_hz must be ascending")
        if self.nominal_hz != self.pstates_hz[-1]:
            raise ConfigurationError("nominal frequency must be the top p-state")
        if self.avx_base_hz is not None and self.avx_base_hz > self.nominal_hz:
            raise ConfigurationError("AVX base cannot exceed nominal frequency")
        if not (self.uncore_min_hz < self.uncore_max_hz):
            raise ConfigurationError("invalid uncore frequency range")

    @property
    def l3_mib(self) -> float:
        return self.l3_mib_per_core * self.n_cores

    @property
    def min_hz(self) -> float:
        return self.pstates_hz[0]

    def nearest_pstate(self, f_hz: float) -> float:
        """Snap ``f_hz`` to the closest selectable p-state."""
        return min(self.pstates_hz, key=lambda p: abs(p - f_hz))

    def validate_pstate(self, f_hz: float) -> float:
        if not any(abs(f_hz - p) < 0.5e6 for p in self.pstates_hz):
            raise ConfigurationError(
                f"{f_hz / 1e9:.2f} GHz is not a selectable p-state of {self.model}"
            )
        return self.nearest_pstate(f_hz)


def _hsw_pstates() -> tuple[float, ...]:
    # 1.2 .. 2.5 GHz in 100 MHz steps (Table II: selectable p-states)
    return tuple(ghz(1.2 + 0.1 * i) for i in range(14))


_HSW_UFS_ACTIVE: dict[float | None, float] = {
    None: ghz(3.0),            # turbo setting
    ghz(2.5): ghz(2.2),        # 3.0 with EPB=performance (handled in ufs.py)
    ghz(2.4): ghz(2.1),
    ghz(2.3): ghz(2.0),
    ghz(2.2): ghz(1.9),
    ghz(2.1): ghz(1.8),
    ghz(2.0): ghz(1.75),
    ghz(1.9): ghz(1.65),
    ghz(1.8): ghz(1.6),
    ghz(1.7): ghz(1.5),
    ghz(1.6): ghz(1.4),
    ghz(1.5): ghz(1.3),
    ghz(1.4): ghz(1.2),
    ghz(1.3): ghz(1.2),
    ghz(1.2): ghz(1.2),
}

_HSW_UFS_PASSIVE: dict[float | None, float] = {
    None: ghz(2.95),           # paper reports 2.9-3.0
    ghz(2.5): ghz(2.1),
    ghz(2.4): ghz(2.0),
    ghz(2.3): ghz(1.9),
    ghz(2.2): ghz(1.8),
    ghz(2.1): ghz(1.7),
    ghz(2.0): ghz(1.65),
    ghz(1.9): ghz(1.55),
    ghz(1.8): ghz(1.5),
    ghz(1.7): ghz(1.4),
    ghz(1.6): ghz(1.2),
    ghz(1.5): ghz(1.2),
    ghz(1.4): ghz(1.2),
    ghz(1.3): ghz(1.2),
    ghz(1.2): ghz(1.2),
}


E5_2680_V3 = CpuSpec(
    model="Intel Xeon E5-2680 v3",
    microarch=HASWELL_EP,
    n_cores=12,
    smt=2,
    nominal_hz=ghz(2.5),
    pstates_hz=_hsw_pstates(),
    turbo=TurboTable(
        non_avx_hz=(
            ghz(3.3), ghz(3.3), ghz(3.1), ghz(3.0),
            ghz(2.9), ghz(2.9), ghz(2.9), ghz(2.9),
            ghz(2.9), ghz(2.9), ghz(2.9), ghz(2.9),
        ),
        avx_hz=(
            ghz(3.1), ghz(3.1), ghz(3.0), ghz(2.9),
            ghz(2.8), ghz(2.8), ghz(2.8), ghz(2.8),
            ghz(2.8), ghz(2.8), ghz(2.8), ghz(2.8),
        ),
    ),
    avx_base_hz=ghz(2.1),
    tdp_w=120.0,
    uncore_min_hz=ghz(1.2),
    uncore_max_hz=ghz(3.0),
    vf_core=VfCurve(v0=0.65, v1=0.15, f_min_hz=ghz(1.2), f_max_hz=ghz(3.3)),
    vf_uncore=VfCurve(v0=0.65, v1=0.15, f_min_hz=ghz(1.2), f_max_hz=ghz(3.0)),
    power=PowerCoefficients(
        static_w=12.0,
        core_dyn_w_per_ghz_v2=3.196,   # 12 cores at activity 1.0 -> 38.35 W/(GHz V^2)
        uncore_dyn_w_per_ghz_v2=8.603,
        dram_idle_w=4.0,
        dram_w_per_gbs=0.35,
    ),
    cstate_latency=CStateLatencySpec(
        c1_local_us=1.1,
        c1_freq_slope_us_per_ghz=0.38,
        c1_remote_extra_us=0.5,
        c3_local_us=4.0,
        c3_high_freq_penalty_us=1.5,
        c3_freq_threshold_ghz=1.5,
        c3_remote_extra_us=1.0,
        pc3_extra_low_us=2.0,
        pc3_extra_high_us=4.0,
        c6_extra_min_us=2.0,
        c6_extra_max_us=8.0,
        pc6_extra_us=8.0,
        acpi_c3_us=33.0,
        acpi_c6_us=133.0,
    ),
    ufs_no_stall_active_hz=_HSW_UFS_ACTIVE,
    ufs_no_stall_passive_hz=_HSW_UFS_PASSIVE,
)


def _snb_pstates() -> tuple[float, ...]:
    return tuple(ghz(1.2 + 0.1 * i) for i in range(15))  # 1.2 .. 2.6 GHz


E5_2670_SNB = CpuSpec(
    model="Intel Xeon E5-2670",
    microarch=SANDY_BRIDGE_EP,
    n_cores=8,
    smt=2,
    nominal_hz=ghz(2.6),
    pstates_hz=_snb_pstates(),
    turbo=TurboTable(
        non_avx_hz=(
            ghz(3.3), ghz(3.2), ghz(3.1), ghz(3.0),
            ghz(3.0), ghz(3.0), ghz(3.0), ghz(3.0),
        ),
        # Sandy Bridge has no separate AVX frequency domain
        avx_hz=(
            ghz(3.3), ghz(3.2), ghz(3.1), ghz(3.0),
            ghz(3.0), ghz(3.0), ghz(3.0), ghz(3.0),
        ),
    ),
    avx_base_hz=None,
    tdp_w=115.0,
    uncore_min_hz=ghz(1.2),
    uncore_max_hz=ghz(3.3),
    vf_core=VfCurve(v0=0.70, v1=0.14, f_min_hz=ghz(1.2), f_max_hz=ghz(3.3)),
    vf_uncore=VfCurve(v0=0.70, v1=0.14, f_min_hz=ghz(1.2), f_max_hz=ghz(3.3)),
    power=PowerCoefficients(
        static_w=16.0,
        core_dyn_w_per_ghz_v2=4.1,
        uncore_dyn_w_per_ghz_v2=7.0,
        dram_idle_w=6.0,
        dram_w_per_gbs=0.45,
    ),
    cstate_latency=CStateLatencySpec(
        c1_local_us=1.5,
        c1_freq_slope_us_per_ghz=0.5,
        c1_remote_extra_us=0.8,
        c3_local_us=6.5,
        c3_high_freq_penalty_us=0.0,
        c3_freq_threshold_ghz=1.5,
        c3_remote_extra_us=1.5,
        pc3_extra_low_us=4.0,
        pc3_extra_high_us=6.0,
        c6_extra_min_us=4.0,
        c6_extra_max_us=10.0,
        pc6_extra_us=12.0,
        acpi_c3_us=80.0,
        acpi_c6_us=104.0,
    ),
    pcu_quantum_ns=0,                   # pre-Haswell: requests applied immediately
    pstate_switch_time_ns=us(25),
    pstate_granted_immediately=True,
    has_pp0_rapl=True,
    rapl_dram_energy_unit_j=61e-6,
)

X5670_WSM = CpuSpec(
    model="Intel Xeon X5670",
    microarch=WESTMERE_EP,
    n_cores=6,
    smt=2,
    nominal_hz=ghz(2.93),
    pstates_hz=tuple(ghz(f) for f in (1.6, 1.73, 1.86, 2.0, 2.13, 2.26,
                                      2.4, 2.53, 2.66, 2.8, 2.93)),
    turbo=TurboTable(
        non_avx_hz=(ghz(3.33), ghz(3.33), ghz(3.06), ghz(3.06), ghz(3.06), ghz(3.06)),
        avx_hz=(ghz(3.33), ghz(3.33), ghz(3.06), ghz(3.06), ghz(3.06), ghz(3.06)),
    ),
    avx_base_hz=None,
    tdp_w=95.0,
    uncore_min_hz=ghz(2.66),
    uncore_max_hz=ghz(2.67),            # effectively fixed uncore clock
    vf_core=VfCurve(v0=0.75, v1=0.13, f_min_hz=ghz(1.6), f_max_hz=ghz(3.33)),
    vf_uncore=VfCurve(v0=0.75, v1=0.13, f_min_hz=ghz(2.0), f_max_hz=ghz(3.33)),
    power=PowerCoefficients(
        static_w=18.0,
        core_dyn_w_per_ghz_v2=4.5,
        uncore_dyn_w_per_ghz_v2=6.0,
        dram_idle_w=7.0,
        dram_w_per_gbs=0.5,
    ),
    cstate_latency=CStateLatencySpec(
        c1_local_us=1.8,
        c1_freq_slope_us_per_ghz=0.5,
        c1_remote_extra_us=1.0,
        c3_local_us=9.0,
        c3_high_freq_penalty_us=0.0,
        c3_freq_threshold_ghz=1.5,
        c3_remote_extra_us=2.0,
        pc3_extra_low_us=5.0,
        pc3_extra_high_us=8.0,
        c6_extra_min_us=6.0,
        c6_extra_max_us=14.0,
        pc6_extra_us=15.0,
        acpi_c3_us=64.0,
        acpi_c6_us=96.0,
    ),
    pcu_quantum_ns=0,
    pstate_granted_immediately=True,
    has_pp0_rapl=False,
    rapl_energy_unit_j=0.0,             # no RAPL on Westmere
    rapl_dram_energy_unit_j=0.0,
)
