"""Microarchitecture parameter sheets (paper Table I).

Each :class:`MicroarchSpec` captures the front-end/back-end widths, SIMD
capabilities and memory-system limits the paper tabulates for Sandy
Bridge-EP and Haswell-EP (plus Westmere-EP, which Section VII uses as a
comparison point for memory behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MicroarchSpec:
    """Static microarchitecture description (one column of Table I)."""

    name: str
    codename: str
    decode_width: int               # x86 instructions decoded per cycle
    allocation_queue: int           # entries (per thread where applicable)
    execute_ports: int              # micro-ops issued to execution per cycle
    retire_width: int               # micro-ops retired per cycle
    scheduler_entries: int
    rob_entries: int
    int_register_file: int
    fp_register_file: int
    simd_isa: str                   # "AVX" or "AVX2"
    fpu_width_bits: int             # per FPU pipe
    fpu_pipes: int
    fma: bool                       # fused multiply-add support
    load_bytes_per_cycle: int       # L1D load bandwidth
    store_bytes_per_cycle: int      # L1D store bandwidth
    l1d_loads_per_cycle: int
    l1d_stores_per_cycle: int
    l2_bytes_per_cycle: int
    load_buffers: int
    store_buffers: int
    line_fill_buffers: int          # outstanding L1D misses per core
    memory_channels: int
    memory_type: str                # e.g. "DDR4-2133"
    memory_transfer_rate_mts: int   # mega-transfers/s per channel
    qpi_speed_gts: float            # QPI giga-transfers/s
    uncore_coupling: str            # "independent" | "tied" | "fixed"

    def __post_init__(self) -> None:
        if self.uncore_coupling not in ("independent", "tied", "fixed"):
            raise ConfigurationError(
                f"unknown uncore coupling {self.uncore_coupling!r}"
            )
        if self.fpu_pipes < 1 or self.fpu_width_bits % 128:
            raise ConfigurationError("implausible FPU configuration")

    # ---- derived quantities (checked against Table I in the benchmarks) ----

    @property
    def flops_per_cycle_double(self) -> int:
        """Peak double-precision FLOPS/cycle per core.

        Each pipe processes ``width/64`` doubles; FMA counts two FLOPs.
        Sandy Bridge has one add + one mul pipe (no FMA): 2 pipes x 4 = 8.
        Haswell has two FMA pipes: 2 pipes x 4 x 2 = 16.
        """
        per_pipe = self.fpu_width_bits // 64
        factor = 2 if self.fma else 1
        return self.fpu_pipes * per_pipe * factor

    @property
    def dram_bandwidth_peak_bytes(self) -> float:
        """Peak DRAM bandwidth in bytes/s (channels x rate x 8 bytes)."""
        return self.memory_channels * self.memory_transfer_rate_mts * 1e6 * 8

    @property
    def qpi_bandwidth_bytes(self) -> float:
        """Bidirectional QPI bandwidth in bytes/s (2 bytes/transfer x 2 dirs)."""
        return self.qpi_speed_gts * 1e9 * 2 * 2

    def table_row(self) -> dict[str, str]:
        """Render this spec as the strings Table I prints."""
        return {
            "Decode": f"{self.decode_width}(+1) x86/cycle",
            "Allocation queue": str(self.allocation_queue),
            "Execute": f"{self.execute_ports} micro-ops/cycle",
            "Retire": f"{self.retire_width} micro-ops/cycle",
            "Scheduler entries": str(self.scheduler_entries),
            "ROB entries": str(self.rob_entries),
            "INT/FP register file": f"{self.int_register_file}/{self.fp_register_file}",
            "SIMD ISA": self.simd_isa,
            "FLOPS/cycle (double)": str(self.flops_per_cycle_double),
            "Load/store buffers": f"{self.load_buffers}/{self.store_buffers}",
            "L2 bytes/cycle": str(self.l2_bytes_per_cycle),
            "Supported memory": (
                f"{self.memory_channels}x{self.memory_type}"
            ),
            "DRAM bandwidth": (
                f"up to {self.dram_bandwidth_peak_bytes / 1e9:.1f} GB/s"
            ),
            "QPI speed": (
                f"{self.qpi_speed_gts} GT/s"
                f" ({self.qpi_bandwidth_bytes / 1e9:.1f} GB/s)"
            ),
        }


SANDY_BRIDGE_EP = MicroarchSpec(
    name="Sandy Bridge-EP",
    codename="sandybridge-ep",
    decode_width=4,
    allocation_queue=28,            # per thread
    execute_ports=6,
    retire_width=4,
    scheduler_entries=54,
    rob_entries=168,
    int_register_file=160,
    fp_register_file=144,
    simd_isa="AVX",
    fpu_width_bits=256,
    fpu_pipes=2,
    fma=False,                      # 1 add + 1 mul pipe
    load_bytes_per_cycle=32,        # 2 x 16 B loads
    store_bytes_per_cycle=16,       # 1 x 16 B store
    l1d_loads_per_cycle=2,
    l1d_stores_per_cycle=1,
    l2_bytes_per_cycle=32,
    load_buffers=64,
    store_buffers=36,
    line_fill_buffers=10,
    memory_channels=4,
    memory_type="DDR3-1600",
    memory_transfer_rate_mts=1600,
    qpi_speed_gts=8.0,
    uncore_coupling="tied",         # uncore clock follows core clock
)

HASWELL_EP = MicroarchSpec(
    name="Haswell-EP",
    codename="haswell-ep",
    decode_width=4,
    allocation_queue=56,            # shared
    execute_ports=8,
    retire_width=4,
    scheduler_entries=60,
    rob_entries=192,
    int_register_file=168,
    fp_register_file=168,
    simd_isa="AVX2",
    fpu_width_bits=256,
    fpu_pipes=2,
    fma=True,
    load_bytes_per_cycle=64,        # 2 x 32 B loads
    store_bytes_per_cycle=32,       # 1 x 32 B store
    l1d_loads_per_cycle=2,
    l1d_stores_per_cycle=1,
    l2_bytes_per_cycle=64,
    load_buffers=72,
    store_buffers=42,
    line_fill_buffers=10,
    memory_channels=4,
    memory_type="DDR4-2133",
    memory_transfer_rate_mts=2133,
    qpi_speed_gts=9.6,
    uncore_coupling="independent",  # uncore frequency scaling (UFS)
)

# Westmere-EP appears in Section VII (Fig. 7) as the generation whose fixed
# uncore frequency made DRAM bandwidth independent of core frequency.
WESTMERE_EP = MicroarchSpec(
    name="Westmere-EP",
    codename="westmere-ep",
    decode_width=4,
    allocation_queue=28,
    execute_ports=6,
    retire_width=4,
    scheduler_entries=36,
    rob_entries=128,
    int_register_file=96,
    fp_register_file=96,
    simd_isa="SSE4.2",
    fpu_width_bits=128,
    fpu_pipes=2,
    fma=False,
    load_bytes_per_cycle=16,
    store_bytes_per_cycle=16,
    l1d_loads_per_cycle=1,
    l1d_stores_per_cycle=1,
    l2_bytes_per_cycle=32,
    load_buffers=48,
    store_buffers=32,
    line_fill_buffers=10,
    memory_channels=3,
    memory_type="DDR3-1333",
    memory_transfer_rate_mts=1333,
    qpi_speed_gts=6.4,
    uncore_coupling="fixed",        # fixed uncore clock
)

MICROARCHES: dict[str, MicroarchSpec] = {
    spec.codename: spec for spec in (SANDY_BRIDGE_EP, HASWELL_EP, WESTMERE_EP)
}
