"""Per-node manufacturing variation for fleet-scale simulation.

One 2-socket node is what the paper measured; a fleet of them is what
its authors measured next. Schuchart et al. (arXiv:1808.08106) show
that nominally identical Haswell nodes differ measurably in power at
the same operating point and in the turbo frequencies they sustain —
the paper's own test system already exhibits the seed of this (Section
III: socket 0 runs at higher voltage than socket 1 for the same
p-state, Table IV gives it lower sustained frequencies).

:class:`VariationModel` parameterizes that spread; :func:`draw_variation`
turns a node seed into one concrete :class:`NodeVariation` — the drawn
per-socket voltage offsets, a leakage scale, and a turbo-bin derate —
via :func:`repro.engine.rng.make_rng`, so the same ``(seed, model)``
always yields the same silicon. ``NodeVariation.apply`` stamps the draw
onto a :class:`~repro.specs.node.NodeSpec`, producing the varied node
the fleet worker simulates.

Draw order is part of the contract (voltage offsets per socket, then
leakage, then turbo derate): changing it changes every fleet's silicon,
exactly like changing a fault-plan draw order would change its faults.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.engine.rng import make_rng
from repro.errors import ConfigurationError
from repro.specs.node import NodeSpec

#: Turbo bins move in whole 100 MHz speed-bin steps, like real binning.
_TURBO_STEP_HZ = 100e6


@dataclass(frozen=True)
class VariationModel:
    """Fleet-wide distribution parameters for per-node silicon spread.

    * ``voltage_sigma_v`` — per-socket V/f offset, normal, clipped to
      ``±voltage_limit_v`` (the paper's two sockets differ by 12 mV);
    * ``leakage_sigma_frac`` — multiplicative spread of the static
      (leakage) power term, log-ish via clipped normal;
    * ``turbo_derate_p`` — probability that a node loses one 100 MHz
      turbo speed bin, applied twice (so 0/1/2 bins, binomially).
    """

    voltage_sigma_v: float = 0.006
    voltage_limit_v: float = 0.025
    leakage_sigma_frac: float = 0.06
    leakage_limit_frac: float = 0.25
    turbo_derate_p: float = 0.25

    def __post_init__(self) -> None:
        if self.voltage_sigma_v < 0 or self.voltage_limit_v < 0:
            raise ConfigurationError("voltage spread must be non-negative")
        if not 0 <= self.leakage_sigma_frac:
            raise ConfigurationError("leakage sigma must be non-negative")
        if not 0 < self.leakage_limit_frac < 1:
            raise ConfigurationError("leakage limit must be within (0, 1)")
        if not 0 <= self.turbo_derate_p <= 1:
            raise ConfigurationError("turbo_derate_p must be within [0, 1]")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "VariationModel":
        return cls(**{f.name: type(f.default)(data[f.name])
                      for f in dataclasses.fields(cls)})


DEFAULT_VARIATION = VariationModel()


@dataclass(frozen=True)
class NodeVariation:
    """One node's drawn silicon: pure data, applicable to any NodeSpec."""

    seed: int
    voltage_offsets_v: tuple[float, ...]
    leakage_scale: float
    turbo_derate_bins: int

    def to_dict(self) -> dict:
        return {"seed": self.seed,
                "voltage_offsets_v": list(self.voltage_offsets_v),
                "leakage_scale": self.leakage_scale,
                "turbo_derate_bins": self.turbo_derate_bins}

    def apply(self, base: NodeSpec) -> NodeSpec:
        """Stamp this draw onto ``base`` (offsets add to the spec's own
        per-socket skew, so the paper's socket-0 asymmetry survives)."""
        if len(self.voltage_offsets_v) != base.n_sockets:
            raise ConfigurationError(
                f"variation drawn for {len(self.voltage_offsets_v)} "
                f"sockets, node has {base.n_sockets}")
        cpu = base.cpu
        power = dataclasses.replace(
            cpu.power, static_w=cpu.power.static_w * self.leakage_scale)
        turbo = cpu.turbo
        if self.turbo_derate_bins:
            derate = self.turbo_derate_bins * _TURBO_STEP_HZ
            floor = cpu.nominal_hz
            turbo = dataclasses.replace(
                turbo,
                non_avx_hz=tuple(max(b - derate, floor)
                                 for b in turbo.non_avx_hz),
                avx_hz=tuple(max(b - derate, cpu.avx_base_hz or floor)
                             for b in turbo.avx_hz))
        return dataclasses.replace(
            base,
            cpu=dataclasses.replace(cpu, power=power, turbo=turbo),
            socket_voltage_offsets_v=tuple(
                base_off + drawn for base_off, drawn in
                zip(base.socket_voltage_offsets_v, self.voltage_offsets_v)))


def draw_variation(seed: int, n_sockets: int = 2,
                   model: VariationModel = DEFAULT_VARIATION,
                   ) -> NodeVariation:
    """Draw one node's silicon from ``seed``. Same arguments ⇒ same part."""
    if n_sockets < 1:
        raise ConfigurationError("a node needs at least one socket")
    rng = make_rng(seed)
    lim = model.voltage_limit_v
    offsets = tuple(
        round(float(min(max(rng.normal(0.0, model.voltage_sigma_v or 1e-12),
                            -lim), lim)), 6)
        for _ in range(n_sockets))
    lk_lim = model.leakage_limit_frac
    leakage = round(1.0 + float(
        min(max(rng.normal(0.0, model.leakage_sigma_frac or 1e-12),
                -lk_lim), lk_lim)), 6)
    derate = int(rng.binomial(2, model.turbo_derate_p))
    return NodeVariation(seed=seed, voltage_offsets_v=offsets,
                         leakage_scale=leakage, turbo_derate_bins=derate)
