"""Voltage/frequency operating-point curves.

The FIVRs pick a supply voltage for each granted frequency from a V/f
curve. The curve is affine over the usable range, which is a good
approximation of published Haswell operating points and is what gives the
power model its superlinear P(f) behaviour (P ~ f * V(f)^2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.units import to_ghz


@dataclass(frozen=True)
class VfCurve:
    """Affine voltage/frequency curve ``V(f) = v0 + v1 * f_ghz``.

    ``offset_v`` models per-part binning skew: the paper observed that the
    cores of the second processor of the test system run at higher voltage
    for the same p-state (Section III).
    """

    v0: float                  # volts at (extrapolated) 0 GHz
    v1: float                  # volts per GHz
    f_min_hz: float
    f_max_hz: float
    offset_v: float = 0.0

    def __post_init__(self) -> None:
        if self.f_min_hz <= 0 or self.f_max_hz <= self.f_min_hz:
            raise ConfigurationError("invalid V/f frequency range")
        if self.voltage(self.f_min_hz) <= 0:
            raise ConfigurationError("V/f curve yields non-positive voltage")

    def voltage(self, f_hz: float) -> float:
        """Supply voltage (V) for frequency ``f_hz``, clamped to the range."""
        # Hot path (called per power evaluation): scalar min/max, not np.clip.
        f = min(max(f_hz, self.f_min_hz), self.f_max_hz)
        return self.v0 + self.v1 * to_ghz(f) + self.offset_v

    def voltage_array(self, f_hz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`voltage` over a float64 frequency array.

        Bit-identical per lane: same clamp order (max before min), same
        affine expression associativity as the scalar path.
        """
        f = np.minimum(np.maximum(f_hz, self.f_min_hz), self.f_max_hz)
        return self.v0 + self.v1 * to_ghz(f) + self.offset_v

    def with_offset(self, offset_v: float) -> "VfCurve":
        """A copy of this curve shifted by ``offset_v`` volts."""
        return VfCurve(
            v0=self.v0,
            v1=self.v1,
            f_min_hz=self.f_min_hz,
            f_max_hz=self.f_max_hz,
            offset_v=self.offset_v + offset_v,
        )
