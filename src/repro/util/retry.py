"""Retry with exponential backoff for transient faults.

The default retryable set is what the fault-injection subsystem (and
real measurement campaigns) produce transiently: ``TransientFaultError``
(including injected MSR read failures) and ``MeasurementError`` (e.g. a
meter dropout leaving an averaging window empty). Configuration and
simulation-logic errors are never retried — they would fail identically
every time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence, TypeVar

from repro.errors import MeasurementError, TransientFaultError

T = TypeVar("T")

#: Exception classes retried by default.
DEFAULT_RETRYABLE: tuple[type[BaseException], ...] = (
    TransientFaultError, MeasurementError)


@dataclass(frozen=True)
class Backoff:
    """Exponential backoff policy: ``initial * factor^(attempt-1)``,
    capped at ``max_delay_s``.

    ``jitter_frac`` optionally de-synchronizes retry storms (many fleet
    shards requeued by one worker death would otherwise hammer the pool
    in lockstep): with a generator passed to :meth:`delay_s`, the delay
    is scaled by a factor drawn uniformly from ``[1 - jitter_frac, 1]``.
    The draw comes only from the *passed-in* RNG — never wall clock or
    global ``random`` state — so a reseeded replay sleeps the identical
    schedule. Without an RNG the delay stays un-jittered, which keeps
    every existing call site bit-for-bit unchanged."""

    initial_s: float = 0.05
    factor: float = 2.0
    max_delay_s: float = 2.0
    jitter_frac: float = 0.0

    def __post_init__(self) -> None:
        if self.initial_s < 0 or self.factor < 1.0 or self.max_delay_s < 0:
            raise ValueError("invalid backoff parameters")
        if not 0.0 <= self.jitter_frac <= 1.0:
            raise ValueError("jitter_frac must be within [0, 1]")

    def delay_s(self, attempt: int, rng=None) -> float:
        """Sleep before retry number ``attempt`` (1-based).

        ``rng`` is a seeded ``numpy.random.Generator`` (or anything with
        a ``random()`` method) supplying the jitter draw.
        """
        if attempt < 1:
            raise ValueError("attempt numbers are 1-based")
        delay = min(self.initial_s * self.factor ** (attempt - 1),
                    self.max_delay_s)
        if self.jitter_frac > 0.0 and rng is not None:
            delay *= 1.0 - self.jitter_frac * float(rng.random())
        return delay

    def delays(self, n: int) -> Iterator[float]:
        return (self.delay_s(i) for i in range(1, n + 1))


@dataclass
class RetryResult:
    """Outcome of :func:`call_with_retry`: the value plus the history."""

    value: object
    attempts: int
    errors: list[BaseException] = field(default_factory=list)

    @property
    def retried(self) -> bool:
        return self.attempts > 1


def call_with_retry(
    fn: Callable[[], T],
    *,
    max_attempts: int = 3,
    retry_on: Sequence[type[BaseException]] = DEFAULT_RETRYABLE,
    backoff: Backoff = Backoff(),
    sleep: Callable[[float], None] = time.sleep,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> RetryResult:
    """Call ``fn`` until it succeeds or attempts are exhausted.

    Raises the last retryable error once ``max_attempts`` is reached;
    non-retryable errors propagate immediately. ``on_retry(attempt,
    error)`` runs before each re-attempt — the experiment runner uses it
    to bump the chaos epoch (the reseed) and checkpoint partial state.
    """
    if max_attempts < 1:
        raise ValueError("need at least one attempt")
    retryable = tuple(retry_on)
    errors: list[BaseException] = []
    for attempt in range(1, max_attempts + 1):
        try:
            return RetryResult(value=fn(), attempts=attempt, errors=errors)
        except retryable as exc:
            errors.append(exc)
            if attempt == max_attempts:
                raise
            if on_retry is not None:
                on_retry(attempt, exc)
            sleep(backoff.delay_s(attempt))
    raise AssertionError("unreachable")


def retry(
    *,
    max_attempts: int = 3,
    retry_on: Sequence[type[BaseException]] = DEFAULT_RETRYABLE,
    backoff: Backoff = Backoff(),
    sleep: Callable[[float], None] = time.sleep,
):
    """Decorator form: ``@retry(max_attempts=4)`` on any callable."""

    def decorate(fn: Callable[..., T]) -> Callable[..., T]:
        def wrapper(*args, **kwargs) -> T:
            result = call_with_retry(
                lambda: fn(*args, **kwargs),
                max_attempts=max_attempts, retry_on=retry_on,
                backoff=backoff, sleep=sleep)
            return result.value  # type: ignore[return-value]

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        return wrapper

    return decorate
