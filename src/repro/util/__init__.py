"""Cross-cutting utilities (retry policies, backoff)."""

from repro.util.retry import Backoff, RetryResult, call_with_retry, retry

__all__ = ["Backoff", "RetryResult", "call_with_retry", "retry"]
