"""Terminal plotting: ASCII line charts, bars and histograms.

The benchmark artifacts are text files; these helpers make the figure
reproductions *look* like figures — good enough to eyeball the shapes
the paper plots (bandwidth curves, latency histograms) without a
graphics stack.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.series import Series, SeriesBundle
from repro.errors import ConfigurationError

_MARKERS = "ox+*#@%&"


def ascii_chart(bundle: SeriesBundle, width: int = 64,
                height: int = 16) -> str:
    """Multi-series scatter/line chart on a character grid."""
    if not bundle.series:
        raise ConfigurationError("empty bundle")
    if width < 16 or height < 4:
        raise ConfigurationError("chart too small")

    x_min = min(float(s.x.min()) for s in bundle.series)
    x_max = max(float(s.x.max()) for s in bundle.series)
    y_min = min(float(s.y.min()) for s in bundle.series)
    y_max = max(float(s.y.max()) for s in bundle.series)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0
    y_min = min(y_min, 0.0) if y_min > 0 and y_min < 0.2 * y_max else y_min

    grid = [[" "] * width for _ in range(height)]
    for s_idx, series in enumerate(bundle.series):
        marker = _MARKERS[s_idx % len(_MARKERS)]
        cols = np.round((series.x - x_min) / (x_max - x_min)
                        * (width - 1)).astype(int)
        rows = np.round((series.y - y_min) / (y_max - y_min)
                        * (height - 1)).astype(int)
        for c, r in zip(cols, rows):
            grid[height - 1 - r][c] = marker

    lines = [bundle.title]
    top_label = f"{y_max:.3g}"
    bottom_label = f"{y_min:.3g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row in enumerate(grid):
        label = top_label if i == 0 else (
            bottom_label if i == height - 1 else "")
        lines.append(f"{label:>{pad}} |" + "".join(row))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(f"{'':>{pad}}  {x_min:<.3g}"
                 + " " * (width - 12) + f"{x_max:>.3g}")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {s.label}"
                        for i, s in enumerate(bundle.series))
    lines.append(f"{'':>{pad}}  [{bundle.x_label}]  {legend}")
    return "\n".join(lines)


def ascii_histogram(values, bin_width: float, width: int = 50,
                    label: str = "") -> str:
    """Horizontal-bar histogram."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("empty data")
    if bin_width <= 0:
        raise ConfigurationError("bin width must be positive")
    lo = np.floor(arr.min() / bin_width) * bin_width
    hi = np.ceil(arr.max() / bin_width) * bin_width + bin_width
    edges = np.arange(lo, hi + bin_width, bin_width)
    counts, edges = np.histogram(arr, bins=edges)
    peak = counts.max() if counts.max() else 1
    lines = [label] if label else []
    for count, edge in zip(counts, edges[:-1]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{edge:8.1f} | {bar} {count if count else ''}")
    return "\n".join(lines)


def ascii_bars(labels: list[str], values: list[float], width: int = 40,
               title: str = "") -> str:
    """Labeled horizontal bars."""
    if len(labels) != len(values):
        raise ConfigurationError("labels/values length mismatch")
    if not values:
        raise ConfigurationError("empty data")
    peak = max(values) if max(values) > 0 else 1.0
    pad = max(len(l) for l in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * int(round(value / peak * width))
        lines.append(f"{label:>{pad}} | {bar} {value:.3g}")
    return "\n".join(lines)
