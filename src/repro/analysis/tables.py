"""Plain-text table rendering for the benchmark harnesses."""

from __future__ import annotations

from repro.errors import ConfigurationError


def render_table(headers: list[str], rows: list[list[str]],
                 title: str | None = None) -> str:
    """Fixed-width ASCII table."""
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_csv(headers: list[str], rows: list[list[str]]) -> str:
    for row in rows:
        if len(row) != len(headers):
            raise ConfigurationError("ragged rows")
    out = [",".join(headers)]
    out.extend(",".join(row) for row in rows)
    return "\n".join(out)
