"""Small statistics helpers shared by the experiments."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def median(values) -> float:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("median of empty data")
    return float(np.median(arr))


def iqr(values) -> float:
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("iqr of empty data")
    q1, q3 = np.percentile(arr, [25, 75])
    return float(q3 - q1)


def histogram(values, bin_width: float,
              lo: float | None = None,
              hi: float | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Fixed-width histogram; returns (counts, edges)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("histogram of empty data")
    if bin_width <= 0:
        raise ConfigurationError("bin width must be positive")
    lo = float(arr.min()) if lo is None else lo
    hi = float(arr.max()) if hi is None else hi
    if hi <= lo:
        hi = lo + bin_width
    edges = np.arange(lo, hi + bin_width, bin_width)
    counts, edges = np.histogram(arr, bins=edges)
    return counts, edges


def fraction_within(values, lo: float, hi: float) -> float:
    """Fraction of samples inside [lo, hi]."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ConfigurationError("empty data")
    return float(np.mean((arr >= lo) & (arr <= hi)))
