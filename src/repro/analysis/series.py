"""Labeled data series — the in-memory form of the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Series:
    """One labeled curve: y over x."""

    label: str
    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "x", np.asarray(self.x, dtype=np.float64))
        object.__setattr__(self, "y", np.asarray(self.y, dtype=np.float64))
        if self.x.shape != self.y.shape:
            raise ConfigurationError(f"series {self.label!r}: shape mismatch")

    def normalized_to(self, x_ref: float) -> "Series":
        """y divided by the y value at the x closest to ``x_ref``."""
        idx = int(np.argmin(np.abs(self.x - x_ref)))
        ref = self.y[idx]
        if ref == 0:
            raise ConfigurationError(f"series {self.label!r}: zero reference")
        return Series(label=self.label, x=self.x, y=self.y / ref)

    def value_at(self, x_val: float) -> float:
        idx = int(np.argmin(np.abs(self.x - x_val)))
        return float(self.y[idx])


@dataclass
class SeriesBundle:
    """A figure: several series plus axis metadata."""

    title: str
    x_label: str
    y_label: str
    series: list[Series] = field(default_factory=list)

    def add(self, series: Series) -> None:
        if any(s.label == series.label for s in self.series):
            raise ConfigurationError(f"duplicate series {series.label!r}")
        self.series.append(series)

    def get(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise ConfigurationError(f"no series {label!r} in {self.title!r}")

    @property
    def labels(self) -> list[str]:
        return [s.label for s in self.series]
