"""Fitting, statistics and rendering helpers for the experiments."""

from repro.analysis.fitting import FitResult, polynomial_fit, linear_fit, quadratic_fit
from repro.analysis.stats import median, histogram, iqr
from repro.analysis.series import Series, SeriesBundle
from repro.analysis.tables import render_table, render_csv
from repro.analysis.plotting import ascii_chart, ascii_histogram, ascii_bars

__all__ = [
    "FitResult",
    "polynomial_fit",
    "linear_fit",
    "quadratic_fit",
    "median",
    "histogram",
    "iqr",
    "Series",
    "SeriesBundle",
    "render_table",
    "render_csv",
    "ascii_chart",
    "ascii_histogram",
    "ascii_bars",
]
