"""Least-squares polynomial fits with R² (the paper's footnote-2 fit)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class FitResult:
    """Polynomial fit y ≈ sum(coeffs[i] * x^i) with goodness of fit."""

    coeffs: tuple[float, ...]        # ascending powers
    r_squared: float
    residual_max: float

    @property
    def degree(self) -> int:
        return len(self.coeffs) - 1

    def predict(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=np.float64)
        result = np.zeros_like(x)
        for power, c in enumerate(self.coeffs):
            result = result + c * x ** power
        return result


def polynomial_fit(x: np.ndarray, y: np.ndarray, degree: int) -> FitResult:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ConfigurationError("x and y must be equal-length 1-D arrays")
    if len(x) <= degree:
        raise ConfigurationError(
            f"need more than {degree} points for a degree-{degree} fit")
    coeffs_desc = np.polyfit(x, y, degree)
    predicted = np.polyval(coeffs_desc, x)
    residuals = y - predicted
    ss_res = float(np.sum(residuals ** 2))
    ss_tot = float(np.sum((y - y.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FitResult(
        coeffs=tuple(float(c) for c in coeffs_desc[::-1]),
        r_squared=r2,
        residual_max=float(np.abs(residuals).max()),
    )


def linear_fit(x: np.ndarray, y: np.ndarray) -> FitResult:
    return polynomial_fit(x, y, 1)


def quadratic_fit(x: np.ndarray, y: np.ndarray) -> FitResult:
    return polynomial_fit(x, y, 2)
