"""The placement scheduler."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.engine.rng import spawn_rng
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.system.node import Node
from repro.units import ms
from repro.workloads.base import Workload


class PlacementPolicy(enum.Enum):
    COMPACT = "compact"      # fill socket 0 first
    SCATTER = "scatter"      # round-robin across sockets
    RANDOM = "random"


@dataclass(frozen=True)
class PlacementOutcome:
    policy: PlacementPolicy
    core_ids: tuple[int, ...]
    throughput: float             # GB/s for bw-bound, GIPS otherwise
    node_dc_power_w: float

    @property
    def efficiency(self) -> float:
        return self.throughput / self.node_dc_power_w \
            if self.node_dc_power_w else 0.0


class Scheduler:
    """Chooses core sets per policy and measures the outcome."""

    def __init__(self, sim: Simulator, node: Node) -> None:
        self.sim = sim
        self.node = node
        self.rng = spawn_rng(sim.rng)

    def select_cores(self, n_threads: int,
                     policy: PlacementPolicy) -> list[int]:
        total = self.node.spec.total_cores
        if not (1 <= n_threads <= total):
            raise ConfigurationError(
                f"{n_threads} threads on a {total}-core node")
        per_socket = self.node.spec.cpu.n_cores
        if policy is PlacementPolicy.COMPACT:
            return list(range(n_threads))
        if policy is PlacementPolicy.SCATTER:
            out = []
            for i in range(n_threads):
                socket = i % self.node.spec.n_sockets
                index = i // self.node.spec.n_sockets
                out.append(socket * per_socket + index)
            return out
        chosen = self.rng.choice(total, size=n_threads, replace=False)
        return sorted(int(c) for c in chosen)

    def run_and_measure(self, workload: Workload, n_threads: int,
                        policy: PlacementPolicy,
                        settle_ns: int = ms(5),
                        measure_ns: int = ms(20)) -> PlacementOutcome:
        core_ids = self.select_cores(n_threads, policy)
        all_ids = [c.core_id for c in self.node.all_cores]
        self.node.stop_workload(all_ids)
        self.node.run_workload(core_ids, workload)
        self.sim.run_for(settle_ns)

        bw_bound = workload.phases[0].bw_bound
        b0 = sum(s.uncore.counters.dram_bytes + s.uncore.counters.l3_bytes
                 for s in self.node.sockets)
        i0 = sum(c.counters.instructions_core for c in self.node.all_cores)
        e0 = sum(s.energy_pkg_j + s.energy_dram_j
                 for s in self.node.sockets)
        t0 = self.sim.now_ns
        self.sim.run_for(measure_ns)
        dt = (self.sim.now_ns - t0) / 1e9

        if bw_bound:
            throughput = (sum(s.uncore.counters.dram_bytes
                              + s.uncore.counters.l3_bytes
                              for s in self.node.sockets) - b0) / dt / 1e9
        else:
            throughput = (sum(c.counters.instructions_core
                              for c in self.node.all_cores) - i0) / dt / 1e9
        power = (sum(s.energy_pkg_j + s.energy_dram_j
                     for s in self.node.sockets) - e0) / dt
        self.node.stop_workload(core_ids)
        return PlacementOutcome(policy=policy, core_ids=tuple(core_ids),
                                throughput=throughput,
                                node_dc_power_w=power)

    def compare(self, workload: Workload, n_threads: int,
                measure_ns: int = ms(20)) -> dict[PlacementPolicy,
                                                  PlacementOutcome]:
        return {policy: self.run_and_measure(workload, n_threads, policy,
                                             measure_ns=measure_ns)
                for policy in (PlacementPolicy.COMPACT,
                               PlacementPolicy.SCATTER)}
