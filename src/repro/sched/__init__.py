"""Thread placement across the node: compact/scatter policies.

The paper measures socket-local behaviour; placement decides how an
application experiences it. Scatter placement buys two memory systems
and two TDP budgets; compact placement keeps one package in deep
package-c-states (saving its static power and letting its uncore halt —
Section V-A's interlock means this only happens when *everything* else
sleeps too).
"""

from repro.sched.placement import (
    PlacementPolicy,
    Scheduler,
    PlacementOutcome,
)

__all__ = ["PlacementPolicy", "Scheduler", "PlacementOutcome"]
