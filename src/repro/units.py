"""Unit conventions and conversion helpers.

The simulation engine uses **integer nanoseconds** for time, **hertz**
(floats) for frequencies, and **joules/watts** for energy/power. These
helpers exist so call sites read unambiguously (``us(500)`` instead of a
bare ``500_000``) and so unit mistakes fail loudly in review.
"""

from __future__ import annotations

# --- time (integer nanoseconds) --------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_S = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds (identity, rounds to the integer grid)."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Seconds to integer nanoseconds."""
    return int(round(value * NS_PER_S))


def to_seconds(t_ns: int) -> float:
    """Integer nanoseconds to float seconds."""
    return t_ns / NS_PER_S


def to_us(t_ns: int) -> float:
    """Integer nanoseconds to float microseconds."""
    return t_ns / NS_PER_US


# --- frequency ---------------------------------------------------------------

HZ_PER_MHZ = 1_000_000.0
HZ_PER_GHZ = 1_000_000_000.0


def mhz(value: float) -> float:
    """MHz to Hz."""
    return value * HZ_PER_MHZ


def ghz(value: float) -> float:
    """GHz to Hz."""
    return value * HZ_PER_GHZ


def to_ghz(f_hz: float) -> float:
    """Hz to GHz."""
    return f_hz / HZ_PER_GHZ


# --- data volume / bandwidth -------------------------------------------------

BYTES_PER_KIB = 1024
BYTES_PER_MIB = 1024 ** 2
BYTES_PER_GIB = 1024 ** 3
BYTES_PER_GB = 10 ** 9


def mib(value: float) -> int:
    """MiB to bytes."""
    return int(round(value * BYTES_PER_MIB))


def gb_per_s(value: float) -> float:
    """GB/s (decimal) to bytes/s."""
    return value * BYTES_PER_GB


def to_gb_per_s(bw_bytes_per_s: float) -> float:
    """Bytes/s to GB/s (decimal)."""
    return bw_bytes_per_s / BYTES_PER_GB


# --- energy ------------------------------------------------------------------

MICROJOULE = 1e-6
