"""repro — a behavioral reproduction of the Intel Haswell-EP energy-
efficiency survey (Hackenberg et al., IPDPSW 2015).

The package simulates the paper's dual-socket Xeon E5-2680 v3 test node —
per-core FIVR p-states, uncore frequency scaling, energy-efficient turbo,
AVX frequencies, TDP enforcement, measured RAPL, core/package c-states,
and the L3/DRAM bandwidth behaviour — plus the instruments (LMG450 meter,
LIKWID-like counters, FTaLaT, c-state probes) and workloads (FIRESTARTER,
LINPACK, mprime, the Fig. 2 micro-benchmark set) needed to re-run every
experiment in the paper.

Quickstart::

    from repro import build_haswell_node, firestarter
    from repro.instruments import LikwidSampler
    from repro.units import seconds

    sim, node = build_haswell_node(seed=1)
    node.run_workload([c.core_id for c in node.all_cores], firestarter())
    sampler = LikwidSampler(sim, node, core_ids=[0, 12])
    sampler.start()
    sim.run_for(seconds(5))
    print(sampler.median_metrics(0))
"""

from repro.engine import Simulator
from repro.system import Node, build_node, build_haswell_node, MsrSpace, MSR
from repro.specs import (
    HASWELL_TEST_NODE,
    SANDY_BRIDGE_TEST_NODE,
    WESTMERE_TEST_NODE,
    E5_2680_V3,
    E5_2670_SNB,
    X5670_WSM,
)
from repro.pcu import Epb
from repro.workloads import (
    firestarter,
    linpack,
    mprime,
    idle,
    busy_wait,
    sinus,
    memory_read,
    compute,
    dgemm,
    sqrt_bench,
    while1_spin,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "Node",
    "build_node",
    "build_haswell_node",
    "MsrSpace",
    "MSR",
    "HASWELL_TEST_NODE",
    "SANDY_BRIDGE_TEST_NODE",
    "WESTMERE_TEST_NODE",
    "E5_2680_V3",
    "E5_2670_SNB",
    "X5670_WSM",
    "Epb",
    "firestarter",
    "linpack",
    "mprime",
    "idle",
    "busy_wait",
    "sinus",
    "memory_read",
    "compute",
    "dgemm",
    "sqrt_bench",
    "while1_spin",
    "__version__",
]
