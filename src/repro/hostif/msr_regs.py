"""MSR addresses and bit-layout codecs for the virtual host interface.

This is the data-sheet layer: pure functions that encode and decode the
register fields the paper's tooling (msr-tools, x86_adapt, pepc) reads
and writes. Nothing here touches the simulator — the device model in
:mod:`repro.hostif.msrdev` composes these with the live node.

Note on MSR_UNCORE_RATIO_LIMIT: at the time of the paper the register
was undocumented ("neither the actual number of this MSR nor the encoded
information is available", Section II-D), which is why the paper-faithful
:class:`repro.system.msr.MsrSpace` raises on it. The host interface
implements the encoding Intel later documented (and pepc uses): max
ratio in bits 6:0, min ratio in bits 14:8, in units of the 100 MHz BCLK.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import MsrError

#: Haswell-EP bus clock: every ratio field is in multiples of this.
BCLK_HZ = 100_000_000


@dataclass(frozen=True)
class BitField:
    """One contiguous field of a 64-bit MSR: ``bits hi:lo`` in SDM terms."""

    name: str
    lo: int
    width: int

    @property
    def hi(self) -> int:
        return self.lo + self.width - 1

    @property
    def value_mask(self) -> int:
        """The unshifted mask (what the field value is ANDed with)."""
        return (1 << self.width) - 1

    @property
    def mask(self) -> int:
        """The in-register mask (shifted to the field position)."""
        return self.value_mask << self.lo


class HostMsr(enum.IntEnum):
    """Registers the virtual ``/dev/cpu/*/msr`` device serves."""

    IA32_TIME_STAMP_COUNTER = 0x10
    IA32_MPERF = 0xE7
    IA32_APERF = 0xE8
    IA32_PERF_STATUS = 0x198
    IA32_PERF_CTL = 0x199
    IA32_MISC_ENABLE = 0x1A0
    IA32_ENERGY_PERF_BIAS = 0x1B0
    MSR_RAPL_POWER_UNIT = 0x606
    MSR_PKG_POWER_LIMIT = 0x610
    MSR_PKG_ENERGY_STATUS = 0x611
    MSR_DRAM_ENERGY_STATUS = 0x619
    MSR_UNCORE_RATIO_LIMIT = 0x620
    MSR_PP0_ENERGY_STATUS = 0x639


# ---- declarative register layout -------------------------------------------
# The single source of truth for every mask and shift below. The
# ``msr-layout`` rule of ``repro-lint`` validates it statically (fields
# must not overlap, must fit 64 bits, energy-status registers must carry
# the 32-bit wrap field) and cross-checks every literal mask/shift in
# this module against the declared extents, so codec and table cannot
# drift apart. ``tests/test_hostif.py`` asserts the same at runtime.

REGISTER_LAYOUT: dict[HostMsr, tuple[BitField, ...]] = {
    HostMsr.IA32_TIME_STAMP_COUNTER: (BitField("count", 0, 64),),
    HostMsr.IA32_MPERF: (BitField("count", 0, 64),),
    HostMsr.IA32_APERF: (BitField("count", 0, 64),),
    HostMsr.IA32_PERF_STATUS: (BitField("current_ratio", 8, 8),),
    HostMsr.IA32_PERF_CTL: (BitField("target_ratio", 8, 8),),
    HostMsr.IA32_MISC_ENABLE: (BitField("eist_enable", 16, 1),
                               BitField("turbo_disable", 38, 1)),
    HostMsr.IA32_ENERGY_PERF_BIAS: (BitField("epb", 0, 4),),
    HostMsr.MSR_RAPL_POWER_UNIT: (BitField("power_unit", 0, 4),
                                  BitField("energy_unit", 8, 5),
                                  BitField("time_unit", 16, 4)),
    HostMsr.MSR_PKG_POWER_LIMIT: (BitField("pl1_limit", 0, 15),
                                  BitField("pl1_enable", 15, 1)),
    HostMsr.MSR_PKG_ENERGY_STATUS: (BitField("energy", 0, 32),),
    HostMsr.MSR_DRAM_ENERGY_STATUS: (BitField("energy", 0, 32),),
    HostMsr.MSR_UNCORE_RATIO_LIMIT: (BitField("max_ratio", 0, 7),
                                     BitField("min_ratio", 8, 7)),
    HostMsr.MSR_PP0_ENERGY_STATUS: (BitField("energy", 0, 32),),
}


# ---- ratio fields (IA32_PERF_CTL/STATUS, 0x620) ---------------------------

def encode_ratio(f_hz: float) -> int:
    """Frequency -> BCLK ratio (rounded to the nearest bin)."""
    return int(round(f_hz / BCLK_HZ))


def decode_ratio(ratio: int) -> float:
    return float(ratio * BCLK_HZ)


def encode_perf_ctl(f_hz: float) -> int:
    """IA32_PERF_CTL: target ratio in bits 15:8."""
    return (encode_ratio(f_hz) & 0xFF) << 8


def decode_perf_ctl(value: int) -> float:
    ratio = (value >> 8) & 0xFF
    if ratio == 0:
        raise MsrError("IA32_PERF_CTL: zero target ratio")
    return decode_ratio(ratio)


def encode_perf_status(f_hz: float) -> int:
    """IA32_PERF_STATUS: current ratio in bits 15:8 (read-only)."""
    return (encode_ratio(f_hz) & 0xFF) << 8


# ---- IA32_MISC_ENABLE ------------------------------------------------------

#: Bit 16: Enhanced Intel SpeedStep (EIST) enable.
MISC_ENABLE_EIST = 1 << 16
#: Bit 38: turbo-mode *disable* (1 = turbo off).
MISC_ENABLE_TURBO_DISABLE = 1 << 38


def encode_misc_enable(turbo_enabled: bool, eist_enabled: bool = True) -> int:
    value = MISC_ENABLE_EIST if eist_enabled else 0
    if not turbo_enabled:
        value |= MISC_ENABLE_TURBO_DISABLE
    return value


def decode_misc_enable_turbo(value: int) -> bool:
    """True iff the write leaves turbo enabled."""
    return not (value & MISC_ENABLE_TURBO_DISABLE)


# ---- MSR_RAPL_POWER_UNIT ---------------------------------------------------

#: Power unit: 1/2^3 W = 0.125 W per count (bits 3:0).
RAPL_POWER_UNIT_EXP = 3
POWER_UNIT_W = 1.0 / (1 << RAPL_POWER_UNIT_EXP)
#: Time unit: 1/2^10 s (bits 19:16).
RAPL_TIME_UNIT_EXP = 10


def encode_rapl_power_unit(energy_exponent: int) -> int:
    """Full SDM layout: power 3:0, energy 12:8, time 19:16."""
    return (RAPL_POWER_UNIT_EXP
            | (energy_exponent & 0x1F) << 8
            | RAPL_TIME_UNIT_EXP << 16)


def decode_rapl_energy_unit_j(unit_register: int) -> float:
    return 1.0 / (1 << ((unit_register >> 8) & 0x1F))


# ---- MSR_PKG_POWER_LIMIT (PL1 fields) --------------------------------------

PL1_MASK = 0x7FFF          # bits 14:0, in power units
PL1_ENABLE = 1 << 15


def encode_power_limit(limit_w: float, enabled: bool = True) -> int:
    counts = int(limit_w / POWER_UNIT_W) & PL1_MASK
    return counts | (PL1_ENABLE if enabled else 0)


def decode_power_limit(value: int) -> tuple[float, bool]:
    """-> (PL1 watts, enable bit)."""
    return (value & PL1_MASK) * POWER_UNIT_W, bool(value & PL1_ENABLE)


# ---- MSR_UNCORE_RATIO_LIMIT ------------------------------------------------

def encode_uncore_ratio_limit(min_hz: float, max_hz: float) -> int:
    """Max ratio bits 6:0, min ratio bits 14:8."""
    return ((encode_ratio(max_hz) & 0x7F)
            | (encode_ratio(min_hz) & 0x7F) << 8)


def decode_uncore_ratio_limit(value: int) -> tuple[float, float]:
    """-> (min_hz, max_hz)."""
    max_hz = decode_ratio(value & 0x7F)
    min_hz = decode_ratio((value >> 8) & 0x7F)
    if max_hz <= 0 or min_hz <= 0:
        raise MsrError("UNCORE_RATIO_LIMIT: zero ratio field")
    return min_hz, max_hz


# ---- 32-bit energy-status counters -----------------------------------------

ENERGY_STATUS_MASK = 0xFFFF_FFFF
