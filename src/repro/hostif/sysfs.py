"""A virtual ``/sys/devices/system/cpu`` tree over the simulated node.

Path-addressable reads and writes, rendered exactly the way Linux
renders them (frequencies in kHz, latencies in microseconds, booleans as
``0``/``1``), backed by the same live subsystems the MSR device drives:

* ``cpu<N>/cpufreq/*`` — the :class:`repro.cpufreq.policy.CpufreqPolicy`
  of that core (``scaling_cur_freq`` is the stale request, the paper's
  Section VI-A point);
* ``cpu<N>/cpuidle/state<i>/*`` — the ACPI c-state menu plus the
  ``disable`` knob (write-through to ``Core.set_cstate_disabled``);
* ``cpu<N>/power/energy_perf_bias`` — raw 4-bit EPB;
* ``cpu<N>/topology/*`` — package/core ids;
* ``intel_uncore_frequency/package_<pp>_die_00/*`` — uncore ratio-limit
  window (write-through to ``Pcu.set_uncore_limits``).

Writes apply immediately, exactly like echoing into real sysfs; there is
no caching layer that could diverge from the MSR view.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.cpufreq.policy import Governor
from repro.cpufreq.subsystem import CpufreqSubsystem
from repro.cstates.acpi import AcpiCStateTable, acpi_table_for
from repro.cstates.states import CState
from repro.errors import ConfigurationError
from repro.pcu.epb import encode_epb, decode_epb
from repro.system.node import Node

_ROOT = "/sys/devices/system/cpu"

_CPUFREQ_RE = re.compile(rf"^{_ROOT}/cpu(\d+)/cpufreq/(\w+)$")
_CPUIDLE_RE = re.compile(rf"^{_ROOT}/cpu(\d+)/cpuidle/state(\d+)/(\w+)$")
_POWER_RE = re.compile(rf"^{_ROOT}/cpu(\d+)/power/(\w+)$")
_TOPOLOGY_RE = re.compile(rf"^{_ROOT}/cpu(\d+)/topology/(\w+)$")
_UNCORE_RE = re.compile(
    rf"^{_ROOT}/intel_uncore_frequency/package_(\d+)_die_00/(\w+)$")
_TOPLEVEL_RE = re.compile(rf"^{_ROOT}/(online|possible|present)$")


def _khz(f_hz: float) -> str:
    return str(int(round(f_hz / 1e3)))


def _parse_khz(value: str, path: str) -> float:
    try:
        return int(value) * 1e3
    except ValueError:
        raise ConfigurationError(
            f"{path}: expected an integer kHz value, got {value!r}") from None


@dataclass
class VirtualSysfs:
    """String-in/string-out file access on the virtual tree."""

    node: Node
    cpufreq: CpufreqSubsystem
    _acpi: AcpiCStateTable = field(init=False)

    def __post_init__(self) -> None:
        self._acpi = acpi_table_for(self.node.spec.cpu)

    # The cpuidle state index order every cpu directory exposes.
    _IDLE_STATES = (CState.C1, CState.C3, CState.C6)

    # ---- public API ------------------------------------------------------

    def read(self, path: str) -> str:
        handler, args, _writable = self._resolve(path)
        return handler(*args)

    def write(self, path: str, value: str) -> None:
        _handler, args, writer = self._resolve(path)
        if writer is None:
            raise ConfigurationError(f"{path}: permission denied (read-only)")
        writer(*args, value.strip())
        sim = self.node.sim
        if sim.trace.wants("hostif-write"):
            sim.trace.emit(sim.now_ns, "hostif", "hostif-write",
                           target=path, value=value.strip())

    # ---- dispatch --------------------------------------------------------

    def _resolve(self, path: str):
        """-> (read handler, args, write handler or None)."""
        if m := _CPUFREQ_RE.match(path):
            cpu, attr = int(m.group(1)), m.group(2)
            self._check_cpu(cpu, path)
            return self._dispatch(self._CPUFREQ_FILES, attr, (cpu,), path)
        if m := _CPUIDLE_RE.match(path):
            cpu, index, attr = int(m.group(1)), int(m.group(2)), m.group(3)
            self._check_cpu(cpu, path)
            if not 0 <= index < len(self._IDLE_STATES):
                raise ConfigurationError(f"{path}: no such cpuidle state")
            return self._dispatch(self._CPUIDLE_FILES, attr,
                                  (cpu, index), path)
        if m := _POWER_RE.match(path):
            cpu, attr = int(m.group(1)), m.group(2)
            self._check_cpu(cpu, path)
            return self._dispatch(self._POWER_FILES, attr, (cpu,), path)
        if m := _TOPOLOGY_RE.match(path):
            cpu, attr = int(m.group(1)), m.group(2)
            self._check_cpu(cpu, path)
            return self._dispatch(self._TOPOLOGY_FILES, attr, (cpu,), path)
        if m := _UNCORE_RE.match(path):
            package, attr = int(m.group(1)), m.group(2)
            if not 0 <= package < len(self.node.sockets):
                raise ConfigurationError(f"{path}: no such package")
            return self._dispatch(self._UNCORE_FILES, attr, (package,), path)
        if m := _TOPLEVEL_RE.match(path):
            return self._cpu_range, (), None
        raise ConfigurationError(f"{path}: no such sysfs file")

    def _dispatch(self, table, attr, args, path):
        try:
            reader, writer = table[attr]
        except KeyError:
            raise ConfigurationError(f"{path}: no such sysfs file") from None
        return (lambda *a: reader(self, *a)), args, \
            (None if writer is None else (lambda *a: writer(self, *a)))

    def _check_cpu(self, cpu: int, path: str) -> None:
        if not any(c.core_id == cpu for c in self.node.all_cores):
            raise ConfigurationError(f"{path}: no such cpu")

    # ---- cpufreq ---------------------------------------------------------

    def _policy(self, cpu: int):
        return self.cpufreq.policy(cpu)

    def _r_governor(self, cpu: int) -> str:
        return self._policy(cpu).governor.value

    def _w_governor(self, cpu: int, value: str) -> None:
        try:
            self._policy(cpu).governor = Governor(value)
        except ValueError:
            raise ConfigurationError(
                f"unknown governor {value!r}") from None

    def _r_available_governors(self, cpu: int) -> str:
        return " ".join(g.value for g in Governor)

    def _r_available_frequencies(self, cpu: int) -> str:
        spec = self.node.core(cpu).spec
        return " ".join(_khz(f) for f in reversed(spec.pstates_hz))

    def _r_min_freq(self, cpu: int) -> str:
        return _khz(self._policy(cpu).scaling_min_hz)

    def _w_min_freq(self, cpu: int, value: str) -> None:
        policy = self._policy(cpu)
        policy.set_limits(_parse_khz(value, "scaling_min_freq"),
                          policy.scaling_max_hz)

    def _r_max_freq(self, cpu: int) -> str:
        return _khz(self._policy(cpu).scaling_max_hz)

    def _w_max_freq(self, cpu: int, value: str) -> None:
        policy = self._policy(cpu)
        policy.set_limits(policy.scaling_min_hz,
                          _parse_khz(value, "scaling_max_freq"))

    def _r_cur_freq(self, cpu: int) -> str:
        return _khz(self._policy(cpu).scaling_cur_freq_hz)

    def _r_setspeed(self, cpu: int) -> str:
        policy = self._policy(cpu)
        if policy.governor is not Governor.USERSPACE \
                or policy.scaling_setspeed_hz is None:
            return "<unsupported>"
        return _khz(policy.scaling_setspeed_hz)

    def _w_setspeed(self, cpu: int, value: str) -> None:
        f_hz = _parse_khz(value, "scaling_setspeed")
        # Write-through: sysfs setspeed is an immediate request, exactly
        # like the direct policy.set_speed + Node.set_pstate pair.
        self._policy(cpu).set_speed(f_hz)
        self.node.set_pstate([cpu], f_hz)

    def _r_cpuinfo_min(self, cpu: int) -> str:
        return _khz(self.node.core(cpu).spec.min_hz)

    def _r_cpuinfo_max(self, cpu: int) -> str:
        return _khz(self.node.core(cpu).spec.nominal_hz)

    _CPUFREQ_FILES = {
        "scaling_governor": (_r_governor, _w_governor),
        "scaling_available_governors": (_r_available_governors, None),
        "scaling_available_frequencies": (_r_available_frequencies, None),
        "scaling_min_freq": (_r_min_freq, _w_min_freq),
        "scaling_max_freq": (_r_max_freq, _w_max_freq),
        "scaling_cur_freq": (_r_cur_freq, None),
        "scaling_setspeed": (_r_setspeed, _w_setspeed),
        "cpuinfo_min_freq": (_r_cpuinfo_min, None),
        "cpuinfo_max_freq": (_r_cpuinfo_max, None),
    }

    # ---- cpuidle ---------------------------------------------------------

    def _r_idle_name(self, cpu: int, index: int) -> str:
        return self._IDLE_STATES[index].name

    def _r_idle_latency(self, cpu: int, index: int) -> str:
        return str(int(self._acpi.entry(self._IDLE_STATES[index]).latency_us))

    def _r_idle_residency(self, cpu: int, index: int) -> str:
        return str(int(
            self._acpi.entry(self._IDLE_STATES[index]).target_residency_us))

    def _r_idle_disable(self, cpu: int, index: int) -> str:
        state = self._IDLE_STATES[index]
        core = self.node.core(cpu)
        return "1" if state in core.disabled_cstates else "0"

    def _w_idle_disable(self, cpu: int, index: int, value: str) -> None:
        if value not in ("0", "1"):
            raise ConfigurationError(f"disable: expected 0 or 1, got {value!r}")
        self.node.core(cpu).set_cstate_disabled(
            self._IDLE_STATES[index], value == "1")

    _CPUIDLE_FILES = {
        "name": (_r_idle_name, None),
        "latency": (_r_idle_latency, None),
        "residency": (_r_idle_residency, None),
        "disable": (_r_idle_disable, _w_idle_disable),
    }

    # ---- power (EPB) -----------------------------------------------------

    def _r_epb(self, cpu: int) -> str:
        pcu = self.node.pcu_of(cpu)
        return str(encode_epb(pcu.epb))

    def _w_epb(self, cpu: int, value: str) -> None:
        try:
            raw = int(value)
        except ValueError:
            raise ConfigurationError(
                f"energy_perf_bias: expected 0-15, got {value!r}") from None
        self.node.pcu_of(cpu).epb = decode_epb(raw)

    _POWER_FILES = {
        "energy_perf_bias": (_r_epb, _w_epb),
    }

    # ---- topology --------------------------------------------------------

    def _r_package_id(self, cpu: int) -> str:
        return str(self.node.core(cpu).socket_id)

    def _r_core_id(self, cpu: int) -> str:
        core = self.node.core(cpu)
        return str(core.core_id - core.socket_id * core.spec.n_cores)

    _TOPOLOGY_FILES = {
        "physical_package_id": (_r_package_id, None),
        "core_id": (_r_core_id, None),
    }

    # ---- uncore ratio limits ---------------------------------------------

    def _r_uncore_min(self, package: int) -> str:
        return _khz(self.node.pcus[package].uncore_limit_min_hz)

    def _w_uncore_min(self, package: int, value: str) -> None:
        self.node.pcus[package].set_uncore_limits(
            min_hz=_parse_khz(value, "min_freq_khz"))

    def _r_uncore_max(self, package: int) -> str:
        return _khz(self.node.pcus[package].uncore_limit_max_hz)

    def _w_uncore_max(self, package: int, value: str) -> None:
        self.node.pcus[package].set_uncore_limits(
            max_hz=_parse_khz(value, "max_freq_khz"))

    def _r_uncore_initial_min(self, package: int) -> str:
        return _khz(self.node.spec.cpu.uncore_min_hz)

    def _r_uncore_initial_max(self, package: int) -> str:
        return _khz(self.node.spec.cpu.uncore_max_hz)

    _UNCORE_FILES = {
        "min_freq_khz": (_r_uncore_min, _w_uncore_min),
        "max_freq_khz": (_r_uncore_max, _w_uncore_max),
        "initial_min_freq_khz": (_r_uncore_initial_min, None),
        "initial_max_freq_khz": (_r_uncore_initial_max, None),
    }

    # ---- toplevel --------------------------------------------------------

    def _cpu_range(self) -> str:
        n = len(self.node.all_cores)
        return f"0-{n - 1}" if n > 1 else "0"
