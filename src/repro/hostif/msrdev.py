"""A ``/dev/cpu/*/msr``-style device over the simulated node.

Reads decode live subsystem state into register images; writes decode
the register image and drive the same control paths the internal Python
API uses (``Node.set_pstate``, the PCU's EPB/turbo/uncore-limit knobs,
the TDP limiter budget). That write-through equivalence is what the
hostif parity experiment proves bit-identical.

Reads fire the ``msr-read`` fault hook exactly like the paper-faithful
:class:`repro.system.msr.MsrSpace`, so chaos-mode transient MSR faults
hit the host interface too.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MsrError
from repro.hostif import msr_regs as regs
from repro.hostif.msr_regs import HostMsr
from repro.pcu.epb import decode_epb, encode_epb
from repro.power.rapl import RaplDomain, unit_exponent
from repro.system.node import Node


@dataclass
class VirtualMsrDev:
    """Register-level read/write access, addressed by cpu (core id)."""

    node: Node

    def read(self, cpu: int, address: int) -> int:
        self.node.sim.fire_fault_hooks("msr-read", cpu=cpu, address=address)
        core = self.node.core(cpu)
        socket = self.node.socket_of(cpu)
        pcu = self.node.pcus[core.socket_id]
        if address == HostMsr.IA32_TIME_STAMP_COUNTER:
            return int(core.counters.tsc)
        if address == HostMsr.IA32_MPERF:
            return int(core.counters.mperf)
        if address == HostMsr.IA32_APERF:
            return int(core.counters.aperf)
        if address == HostMsr.IA32_PERF_STATUS:
            return regs.encode_perf_status(core.freq_hz)
        if address == HostMsr.IA32_PERF_CTL:
            # The last software request; turbo requests read as nominal
            # (the ratio the OS writes to ask for hardware-managed max).
            f_hz = core.requested_hz if core.requested_hz is not None \
                else core.spec.nominal_hz
            return regs.encode_perf_ctl(f_hz)
        if address == HostMsr.IA32_MISC_ENABLE:
            return regs.encode_misc_enable(pcu.turbo_enabled)
        if address == HostMsr.IA32_ENERGY_PERF_BIAS:
            return encode_epb(pcu.epb)
        if address == HostMsr.MSR_RAPL_POWER_UNIT:
            exponent = unit_exponent(socket.spec.rapl_energy_unit_j)
            return regs.encode_rapl_power_unit(exponent)
        if address == HostMsr.MSR_PKG_POWER_LIMIT:
            return regs.encode_power_limit(pcu.limiter.budget_w)
        if address == HostMsr.MSR_PKG_ENERGY_STATUS:
            return (socket.rapl.read_counter(RaplDomain.PACKAGE)
                    & regs.ENERGY_STATUS_MASK)
        if address == HostMsr.MSR_DRAM_ENERGY_STATUS:
            return (socket.rapl.read_counter(RaplDomain.DRAM)
                    & regs.ENERGY_STATUS_MASK)
        if address == HostMsr.MSR_PP0_ENERGY_STATUS:
            if not socket.spec.has_pp0_rapl:
                raise MsrError(
                    "PP0_ENERGY_STATUS: the PP0 domain is not supported on "
                    "Haswell-EP (Section IV)")
            return (socket.rapl.read_counter(RaplDomain.PP0)
                    & regs.ENERGY_STATUS_MASK)
        if address == HostMsr.MSR_UNCORE_RATIO_LIMIT:
            return regs.encode_uncore_ratio_limit(
                pcu.uncore_limit_min_hz, pcu.uncore_limit_max_hz)
        raise MsrError(f"unimplemented MSR {address:#x}")

    def write(self, cpu: int, address: int, value: int) -> None:
        self._write_through(cpu, address, value)
        sim = self.node.sim
        if sim.trace.wants("hostif-write"):
            sim.trace.emit(sim.now_ns, "hostif", "hostif-write",
                           target=f"msr:cpu{cpu}:{address:#x}",
                           value=f"{value:#x}")

    def _write_through(self, cpu: int, address: int, value: int) -> None:
        core = self.node.core(cpu)
        pcu = self.node.pcus[core.socket_id]
        if address == HostMsr.IA32_PERF_CTL:
            self.node.set_pstate([cpu], regs.decode_perf_ctl(value))
            return
        if address == HostMsr.IA32_MISC_ENABLE:
            # Turbo is package-scoped on this part: the write reaches the
            # cpu's socket PCU (pepc writes it on every cpu of a package).
            pcu.turbo_enabled = regs.decode_misc_enable_turbo(value)
            return
        if address == HostMsr.IA32_ENERGY_PERF_BIAS:
            pcu.epb = decode_epb(value & 0xF)
            return
        if address == HostMsr.MSR_PKG_POWER_LIMIT:
            limit_w, enabled = regs.decode_power_limit(value)
            if enabled and limit_w <= 0:
                raise MsrError("PKG_POWER_LIMIT: zero/negative PL1")
            pcu.limiter.budget_w = limit_w if enabled else pcu.spec.tdp_w
            return
        if address == HostMsr.MSR_UNCORE_RATIO_LIMIT:
            min_hz, max_hz = regs.decode_uncore_ratio_limit(value)
            pcu.set_uncore_limits(min_hz, max_hz)
            return
        raise MsrError(f"MSR {address:#x} is read-only or unimplemented")
