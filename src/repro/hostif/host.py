"""The bundle a host-interface client holds: node + MSR device + sysfs.

Constructing a :class:`VirtualHost` wires a cpufreq subsystem, the MSR
device and the sysfs tree over an existing (simulator, node) pair. The
construction itself schedules nothing and draws no random numbers, so a
host can be attached to any node — including mid-experiment — without
perturbing determinism; call :meth:`start` to begin the cpufreq governor
tick when the scenario wants one.
"""

from __future__ import annotations

from repro.cpufreq.subsystem import CpufreqSubsystem
from repro.engine.simulator import Simulator
from repro.hostif.msrdev import VirtualMsrDev
from repro.hostif.sysfs import VirtualSysfs
from repro.system.node import Node
from repro.units import ms


class VirtualHost:
    """OS-level access to one simulated node."""

    def __init__(self, sim: Simulator, node: Node,
                 cpufreq_period_ns: int = ms(10)) -> None:
        self.sim = sim
        self.node = node
        self.cpufreq = CpufreqSubsystem(sim, node, cpufreq_period_ns)
        self.msr = VirtualMsrDev(node)
        self.sysfs = VirtualSysfs(node, self.cpufreq)

    def start(self) -> "VirtualHost":
        """Start the cpufreq governor tick (ondemand-style sampling)."""
        self.cpufreq.start()
        return self

    def stop(self) -> None:
        self.cpufreq.stop()

    @property
    def cpu_ids(self) -> list[int]:
        return [c.core_id for c in self.node.all_cores]
