"""The virtual host interface: the OS-visible face of the simulated node.

The paper drives every measurement through what the operating system
exposes — ``/dev/cpu/*/msr`` registers, cpufreq/cpuidle sysfs files,
msr-tools and x86_adapt. This package rebuilds those surfaces over the
simulated node so experiments and external-style tools can exercise the
same register-level contract:

* :mod:`repro.hostif.msr_regs` — register addresses and bit-layout
  encode/decode helpers (the data-sheet layer, no simulator knowledge);
* :mod:`repro.hostif.msrdev` — a ``/dev/cpu/*/msr``-style device with
  write-through semantics into the live PCU/cpufreq/RAPL subsystems;
* :mod:`repro.hostif.sysfs` — a path-addressable virtual
  ``/sys/devices/system/cpu`` tree (cpufreq policies, cpuidle states
  with disable knobs, topology, uncore ratio limits);
* :mod:`repro.hostif.host` — :class:`VirtualHost`, the bundle tools and
  experiments hold.

See ``docs/host_interface.md`` for the register map and path map.
"""

from repro.hostif.host import VirtualHost
from repro.hostif.msr_regs import HostMsr
from repro.hostif.msrdev import VirtualMsrDev
from repro.hostif.sysfs import VirtualSysfs

__all__ = ["HostMsr", "VirtualHost", "VirtualMsrDev", "VirtualSysfs"]
