"""Turn a :class:`~repro.faults.plan.FaultPlan` into simulator events.

The injector is armed against a concrete (simulator, node) pair: each
planned fault becomes a scheduled event; window faults schedule their
own end. Everything it did is recorded in :attr:`FaultInjector.log` as
plain dicts (deterministic — no wall clock), which the determinism tests
compare across runs.

Fault mechanics:

* RAPL wraps skew the counter phase via ``RaplBank.force_wrap`` — true
  energy is untouched, so wrap-safe readers stay exact while naive
  subtraction breaks;
* transient MSR faults install hooks on the ``msr-read`` and
  ``perfctr-sample`` points that raise ``TransientMsrError`` for the
  window;
* LMG450 dropouts/glitches install hooks on ``lmg450-sample`` returning
  ``drop``/``replace`` directives;
* PCU jitter and PROCHOT throttles set the corresponding PCU attributes
  for the window (the throttle clamp is applied at the next grant
  opportunity, like the hardware signal);
* NUMA-link faults degrade ``node.link_derate`` (bandwidth factor +
  latency adder) for the window;
* PSU brownouts push an AC-input sag through ``node.psu.set_input_sag``
  for the window, inflating wall-side power.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import FaultInjectionError, TransientMsrError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.power.rapl import RaplDomain

if TYPE_CHECKING:
    from repro.engine.simulator import Simulator
    from repro.system.node import Node


class FaultInjector:
    """Schedules and applies one plan against one simulated node."""

    def __init__(self, sim: "Simulator", node: "Node",
                 plan: FaultPlan) -> None:
        self.sim = sim
        self.node = node
        self.plan = plan
        self.log: list[dict] = []
        self._armed = False

    # ---- lifecycle -------------------------------------------------------

    def arm(self) -> "FaultInjector":
        """Schedule every plan event that is still in the future."""
        if self._armed:
            raise FaultInjectionError("injector already armed")
        self._armed = True
        apply = {
            FaultKind.RAPL_WRAP: self._rapl_wrap,
            FaultKind.MSR_TRANSIENT: self._msr_transient,
            FaultKind.LMG_DROPOUT: self._lmg_dropout,
            FaultKind.LMG_GLITCH: self._lmg_glitch,
            FaultKind.PCU_JITTER: self._pcu_jitter,
            FaultKind.THERMAL_THROTTLE: self._thermal_throttle,
            FaultKind.NUMA_LINK: self._numa_link,
            FaultKind.PSU_BROWNOUT: self._psu_brownout,
        }
        for ev in self.plan.events:
            if ev.time_ns < self.sim.now_ns:
                continue
            if ev.kind is FaultKind.WORKER_CRASH:
                # Process-level fault: kills the host process, not the
                # simulated node. Consumed by repro.fleet.worker before
                # the simulation starts; meaningless as a sim event.
                continue
            self.sim.schedule_at(
                ev.time_ns,
                lambda _t, e=ev, fn=apply[ev.kind]: fn(e),
                label=f"fault-{ev.kind.value}")
        return self

    def _record(self, event: FaultEvent, **detail) -> None:
        entry = {"time_ns": self.sim.now_ns, "kind": event.kind.value}
        entry.update(dict(event.params))
        entry.update(detail)
        self.log.append(entry)
        if self.sim.trace.wants("fault-fire"):
            params = dict(event.params)
            params.update(detail)
            self.sim.trace.emit(self.sim.now_ns, "faults", "fault-fire",
                                fault=event.kind.value, params=params)

    def _socket_index(self, event: FaultEvent) -> int:
        return int(event.param("socket", 0)) % len(self.node.sockets)

    # ---- fault implementations ------------------------------------------

    def _rapl_wrap(self, event: FaultEvent) -> None:
        socket = self.node.sockets[self._socket_index(event)]
        domain = RaplDomain(event.param("domain", "package"))
        counter = socket.rapl.force_wrap(
            domain, int(event.param("margin_counts", 0)))
        self._record(event, counter_after=counter)

    def _msr_transient(self, event: FaultEvent) -> None:
        duration = int(event.param("duration_ns", 0))

        def fail(**_ctx) -> None:
            raise TransientMsrError(
                f"injected transient MSR fault "
                f"(window {duration / 1e6:.1f} ms at "
                f"t={event.time_ns / 1e9:.3f} s)")

        for point in ("msr-read", "perfctr-sample"):
            self.sim.add_fault_hook(point, fail)
        self.sim.schedule_after(
            duration, lambda _t: self._end_msr_transient(fail),
            label="fault-msr-transient-end")
        self._record(event)

    def _end_msr_transient(self, hook) -> None:
        for point in ("msr-read", "perfctr-sample"):
            self.sim.remove_fault_hook(point, hook)

    def _lmg_dropout(self, event: FaultEvent) -> None:
        duration = int(event.param("duration_ns", 0))

        def drop(**_ctx) -> dict:
            return {"action": "drop"}

        self.sim.add_fault_hook("lmg450-sample", drop)
        self.sim.schedule_after(
            duration,
            lambda _t: self.sim.remove_fault_hook("lmg450-sample", drop),
            label="fault-lmg-dropout-end")
        self._record(event)

    def _lmg_glitch(self, event: FaultEvent) -> None:
        factor = float(event.param("factor", 3.0))
        sign = int(event.param("sign", 1))

        def glitch(watts: float = 0.0, **_ctx) -> dict:
            # One-shot: the next sample is replaced, then the hook leaves.
            self.sim.remove_fault_hook("lmg450-sample", glitch)
            value = watts * factor if sign > 0 else watts / factor
            return {"action": "replace", "watts": value}

        self.sim.add_fault_hook("lmg450-sample", glitch)
        self._record(event)

    def _pcu_jitter(self, event: FaultEvent) -> None:
        pcu = self.node.pcus[self._socket_index(event)]
        extra = int(event.param("extra_jitter_ns", 0))
        duration = int(event.param("duration_ns", 0))
        pcu.extra_tick_jitter_ns = extra
        self.sim.schedule_after(
            duration, lambda _t: setattr(pcu, "extra_tick_jitter_ns", 0),
            label="fault-pcu-jitter-end")
        self._record(event)

    def _thermal_throttle(self, event: FaultEvent) -> None:
        pcu = self.node.pcus[self._socket_index(event)]
        duration = int(event.param("duration_ns", 0))
        cap_hz = pcu.spec.min_hz
        pcu.prochot_cap_hz = cap_hz
        self.sim.schedule_after(
            duration, lambda _t: setattr(pcu, "prochot_cap_hz", None),
            label="fault-prochot-end")
        self._record(event, cap_hz=cap_hz)

    def _numa_link(self, event: FaultEvent) -> None:
        duration = int(event.param("duration_ns", 0))
        factor = float(event.param("bandwidth_factor", 1.0))
        latency_add = float(event.param("latency_add_ns", 0.0))
        self.node.link_derate.degrade(bandwidth_factor=factor,
                                      latency_add_ns=latency_add)
        self.sim.schedule_after(
            duration, lambda _t: self.node.link_derate.restore(),
            label="fault-numa-link-end")
        self._record(event)

    def _psu_brownout(self, event: FaultEvent) -> None:
        duration = int(event.param("duration_ns", 0))
        sag = float(event.param("sag_frac", 0.0))
        self.node.psu.set_input_sag(sag)
        self.sim.schedule_after(
            duration, lambda _t: self.node.psu.set_input_sag(0.0),
            label="fault-psu-brownout-end")
        self._record(event)
