"""Deterministic fault injection for the simulated measurement campaign.

``plan`` draws a seeded, immutable fault schedule; ``injector`` replays
it against one (simulator, node) pair; ``chaos`` arms an injector on
every node the process builds — the machinery behind
``scripts/run_paper.py --chaos <seed>``. See ``docs/fault_injection.md``.
"""

from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DEFAULT_HORIZON_NS,
    DEFAULT_PROFILE,
    NUMA_LINK_STRESS,
    PSU_BROWNOUT_STRESS,
    FaultEvent,
    FaultKind,
    FaultPlan,
    FaultProfile,
)

__all__ = [
    "DEFAULT_HORIZON_NS",
    "DEFAULT_PROFILE",
    "NUMA_LINK_STRESS",
    "PSU_BROWNOUT_STRESS",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultProfile",
]
