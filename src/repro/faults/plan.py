"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is a fixed schedule of :class:`FaultEvent`\\ s drawn
once from a seeded generator (:func:`repro.engine.rng.make_rng`), so the
same seed always yields a byte-identical schedule. The plan is pure
data — :class:`~repro.faults.injector.FaultInjector` turns it into
simulator events against a concrete node.

The taxonomy mirrors what real measurement campaigns on this hardware
run into (Schuchart et al. on run-to-run variation; every RAPL user on
32-bit counter wraps):

* ``RAPL_WRAP`` — the 32-bit energy counter is caught near its wrap
  point mid-measurement;
* ``MSR_TRANSIENT`` — a window during which MSR/counter reads fail
  transiently (``TransientMsrError``);
* ``LMG_DROPOUT`` — the AC meter loses samples for a while;
* ``LMG_GLITCH`` — one out-of-envelope meter reading;
* ``PCU_JITTER`` — the PCU's external tick source is disturbed, widening
  the grant-opportunity spread;
* ``THERMAL_THROTTLE`` — a PROCHOT#-style episode clamps all p-states;
* ``NUMA_LINK`` — the cross-socket (QPI) link degrades for a window:
  bandwidth derated, per-hop latency added;
* ``PSU_BROWNOUT`` — the AC input sags, inflating the wall-side draw the
  LMG450 sees for the same DC load.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field

from repro.engine.rng import make_rng
from repro.errors import FaultInjectionError
from repro.units import ms, seconds, us


class FaultKind(enum.Enum):
    RAPL_WRAP = "rapl-wrap"
    MSR_TRANSIENT = "msr-transient"
    LMG_DROPOUT = "lmg-dropout"
    LMG_GLITCH = "lmg-glitch"
    PCU_JITTER = "pcu-jitter"
    THERMAL_THROTTLE = "thermal-throttle"
    NUMA_LINK = "numa-link"
    PSU_BROWNOUT = "psu-brownout"
    # Process-level kind: the worker process hosting the simulation dies
    # (``os._exit``). It never reaches a simulator — FaultInjector skips
    # it; the fleet layer (repro.fleet.worker) consumes it to kill its
    # own shard worker mid-sweep, one-shot per sweep.
    WORKER_CRASH = "worker-crash"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: an instant, a kind, and its parameters.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so events are
    hashable and serialize deterministically.
    """

    time_ns: int
    kind: FaultKind
    params: tuple[tuple[str, int | float | str], ...] = ()

    def param(self, key: str, default=None):
        for k, v in self.params:
            if k == key:
                return v
        return default

    def to_dict(self) -> dict:
        return {"time_ns": self.time_ns, "kind": self.kind.value,
                "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultEvent":
        return cls(time_ns=int(data["time_ns"]),
                   kind=FaultKind(data["kind"]),
                   params=_pairs(**data.get("params", {})))


def _pairs(**kwargs) -> tuple[tuple[str, int | float | str], ...]:
    return tuple(sorted(kwargs.items()))


@dataclass(frozen=True)
class FaultProfile:
    """Per-kind event rates (events per simulated second) and parameter
    ranges for plan generation. The defaults are gentle enough that a
    retried experiment normally recovers, while still exercising every
    fault path over a full paper run."""

    rapl_wrap_rate: float = 0.08
    msr_transient_rate: float = 0.02
    msr_window_ns_range: tuple[int, int] = (ms(80), ms(400))
    lmg_dropout_rate: float = 0.02
    lmg_dropout_ns_range: tuple[int, int] = (ms(400), ms(2500))
    lmg_glitch_rate: float = 0.05
    lmg_glitch_factor_range: tuple[float, float] = (1.5, 6.0)
    pcu_jitter_rate: float = 0.015
    pcu_jitter_ns_range: tuple[int, int] = (ms(20), ms(300))
    pcu_jitter_extra_ns: int = us(150)
    throttle_rate: float = 0.01
    throttle_ns_range: tuple[int, int] = (ms(30), ms(250))
    numa_link_rate: float = 0.015
    numa_link_ns_range: tuple[int, int] = (ms(50), ms(600))
    numa_link_bw_factor_range: tuple[float, float] = (0.35, 0.85)
    numa_link_latency_add_ns_range: tuple[int, int] = (40, 220)
    psu_brownout_rate: float = 0.015
    psu_brownout_ns_range: tuple[int, int] = (ms(20), ms(250))
    psu_brownout_sag_range: tuple[float, float] = (0.02, 0.12)
    # Off by default: worker crashes are a fleet-level fault (they kill
    # the hosting process, not the simulated node).
    worker_crash_rate: float = 0.0


DEFAULT_PROFILE = FaultProfile()

#: Chaos profile concentrating on cross-socket link degradation: every
#: other kind is silenced so a run isolates the NUMA-link behaviour.
NUMA_LINK_STRESS = FaultProfile(
    rapl_wrap_rate=0.0, msr_transient_rate=0.0, lmg_dropout_rate=0.0,
    lmg_glitch_rate=0.0, pcu_jitter_rate=0.0, throttle_rate=0.0,
    numa_link_rate=0.4, psu_brownout_rate=0.0)

#: Chaos profile concentrating on AC-input sag episodes.
PSU_BROWNOUT_STRESS = FaultProfile(
    rapl_wrap_rate=0.0, msr_transient_rate=0.0, lmg_dropout_rate=0.0,
    lmg_glitch_rate=0.0, pcu_jitter_rate=0.0, throttle_rate=0.0,
    numa_link_rate=0.0, psu_brownout_rate=0.4)

#: Default plan horizon: comfortably longer than any single experiment's
#: simulated time, so fault pressure persists for the whole run.
DEFAULT_HORIZON_NS = seconds(150)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered fault schedule."""

    seed: int
    horizon_ns: int
    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        if self.horizon_ns <= 0:
            raise FaultInjectionError("fault-plan horizon must be positive")
        for ev in self.events:
            if not 0 <= ev.time_ns <= self.horizon_ns:
                raise FaultInjectionError(
                    f"fault event at t={ev.time_ns} ns outside the "
                    f"[0, {self.horizon_ns}] ns horizon")

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: FaultKind) -> list[FaultEvent]:
        return [ev for ev in self.events if ev.kind is kind]

    def to_dict(self) -> dict:
        return {"seed": self.seed, "horizon_ns": self.horizon_ns,
                "events": [ev.to_dict() for ev in self.events]}

    def to_json(self) -> str:
        """Canonical serialization — byte-identical for identical plans."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (used by trace-manifest replay)."""
        return cls(seed=int(data["seed"]),
                   horizon_ns=int(data["horizon_ns"]),
                   events=tuple(FaultEvent.from_dict(e)
                                for e in data.get("events", [])))

    @classmethod
    def generate(cls, seed: int, horizon_ns: int = DEFAULT_HORIZON_NS,
                 profile: FaultProfile = DEFAULT_PROFILE,
                 n_sockets: int = 2) -> "FaultPlan":
        """Draw a schedule from ``seed``. Same arguments ⇒ same plan."""
        if horizon_ns <= 0:
            raise FaultInjectionError("fault-plan horizon must be positive")
        rng = make_rng(seed)
        horizon_s = horizon_ns / seconds(1)
        events: list[FaultEvent] = []

        def times(rate: float) -> list[int]:
            n = int(rng.poisson(rate * horizon_s))
            return [int(t) for t in
                    sorted(rng.uniform(1, horizon_ns, size=n))]

        def span(lo_hi: tuple[int, int]) -> int:
            return int(rng.integers(lo_hi[0], lo_hi[1] + 1))

        def socket() -> int:
            return int(rng.integers(0, n_sockets))

        for t in times(profile.rapl_wrap_rate):
            events.append(FaultEvent(t, FaultKind.RAPL_WRAP, _pairs(
                socket=socket(),
                domain=str(rng.choice(["package", "dram"])),
                margin_counts=int(rng.integers(1_000, 200_000)))))
        for t in times(profile.msr_transient_rate):
            events.append(FaultEvent(t, FaultKind.MSR_TRANSIENT, _pairs(
                duration_ns=span(profile.msr_window_ns_range))))
        for t in times(profile.lmg_dropout_rate):
            events.append(FaultEvent(t, FaultKind.LMG_DROPOUT, _pairs(
                duration_ns=span(profile.lmg_dropout_ns_range))))
        for t in times(profile.lmg_glitch_rate):
            lo, hi = profile.lmg_glitch_factor_range
            events.append(FaultEvent(t, FaultKind.LMG_GLITCH, _pairs(
                factor=round(float(rng.uniform(lo, hi)), 6),
                sign=int(rng.choice([-1, 1])))))
        for t in times(profile.pcu_jitter_rate):
            events.append(FaultEvent(t, FaultKind.PCU_JITTER, _pairs(
                socket=socket(),
                duration_ns=span(profile.pcu_jitter_ns_range),
                extra_jitter_ns=int(profile.pcu_jitter_extra_ns))))
        for t in times(profile.throttle_rate):
            events.append(FaultEvent(t, FaultKind.THERMAL_THROTTLE, _pairs(
                socket=socket(),
                duration_ns=span(profile.throttle_ns_range))))
        # New kinds draw strictly after the original loops so existing
        # seeds keep their original event streams for the legacy kinds.
        for t in times(profile.numa_link_rate):
            lo, hi = profile.numa_link_bw_factor_range
            events.append(FaultEvent(t, FaultKind.NUMA_LINK, _pairs(
                duration_ns=span(profile.numa_link_ns_range),
                bandwidth_factor=round(float(rng.uniform(lo, hi)), 6),
                latency_add_ns=span(profile.numa_link_latency_add_ns_range))))
        for t in times(profile.psu_brownout_rate):
            lo, hi = profile.psu_brownout_sag_range
            events.append(FaultEvent(t, FaultKind.PSU_BROWNOUT, _pairs(
                duration_ns=span(profile.psu_brownout_ns_range),
                sag_frac=round(float(rng.uniform(lo, hi)), 6))))
        for t in times(profile.worker_crash_rate):
            events.append(FaultEvent(t, FaultKind.WORKER_CRASH))

        events.sort(key=lambda ev: (ev.time_ns, ev.kind.value, ev.params))
        return cls(seed=seed, horizon_ns=horizon_ns, events=tuple(events))
