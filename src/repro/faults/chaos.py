"""Process-wide chaos mode: arm a fault injector on every node built.

Experiments construct their own ``Simulator``/``Node`` internally, so
fault injection cannot be threaded through their signatures without
touching every experiment. Instead, ``build_node`` asks this module
whether chaos is active; if so, each freshly built node gets its own
:class:`~repro.faults.injector.FaultInjector` armed with a plan derived
deterministically from ``(chaos seed, retry epoch, build counter)``.

Determinism: activation resets the counters, and the experiment suite
runs sequentially, so run N's k-th node build always receives the same
sub-seed — two runs with the same chaos seed produce byte-identical
fault schedules and identical outcome records. The retry epoch is
bumped by the experiment runner between attempts, which is the
"reseeded RNG on transient faults": a retried experiment replays under
a fresh fault plan instead of deterministically hitting the same wall.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.errors import FaultInjectionError
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    DEFAULT_HORIZON_NS,
    DEFAULT_PROFILE,
    FaultPlan,
    FaultProfile,
)
from repro.system import buildhooks

if TYPE_CHECKING:
    from repro.engine.simulator import Simulator
    from repro.system.node import Node


@dataclass
class _ChaosState:
    seed: int
    profile: FaultProfile
    horizon_ns: int
    epoch: int = 0
    builds: int = 0
    injectors: list[FaultInjector] = field(default_factory=list)


_state: _ChaosState | None = None


def activate(seed: int, profile: FaultProfile = DEFAULT_PROFILE,
             horizon_ns: int = DEFAULT_HORIZON_NS) -> None:
    """Enter chaos mode; every node built from now on gets a fault plan."""
    global _state
    if _state is not None:
        raise FaultInjectionError("chaos mode is already active")
    if seed < 0:
        raise FaultInjectionError("chaos seed must be non-negative")
    _state = _ChaosState(seed=seed, profile=profile, horizon_ns=horizon_ns)


def deactivate() -> None:
    global _state
    _state = None


def is_active() -> bool:
    return _state is not None


def bump_epoch() -> None:
    """Shift all subsequent sub-seeds (called between retry attempts)."""
    if _state is not None:
        _state.epoch += 1


def subseed(seed: int, epoch: int, build: int) -> int:
    """Mix the chaos seed with the retry epoch and build counter."""
    return (seed * 1_000_003 + epoch * 8_191 + build) & 0xFFFF_FFFF


def injector_logs() -> list[list[dict]]:
    """The applied-fault logs of every injector armed so far."""
    if _state is None:
        return []
    return [inj.log for inj in _state.injectors]


def maybe_arm(sim: "Simulator", node: "Node") -> FaultInjector | None:
    """Post-build hook: arm an injector if chaos is active.

    Registered with :mod:`repro.system.buildhooks` below, so
    ``build_node`` runs it without the system layer importing this
    module (the layering inversion).  Chaos mode is only reachable
    through this module, so the registration always precedes any
    armed build.
    """
    if _state is None:
        return None
    _state.builds += 1
    plan = FaultPlan.generate(
        subseed(_state.seed, _state.epoch, _state.builds),
        horizon_ns=_state.horizon_ns,
        profile=_state.profile,
        n_sockets=len(node.sockets),
    )
    injector = FaultInjector(sim, node, plan).arm()
    _state.injectors.append(injector)
    return injector


buildhooks.register(maybe_arm)


@contextmanager
def chaos(seed: int, profile: FaultProfile = DEFAULT_PROFILE,
          horizon_ns: int = DEFAULT_HORIZON_NS) -> Iterator[None]:
    """``with chaos(42): ...`` — chaos mode scoped to a block."""
    activate(seed, profile=profile, horizon_ns=horizon_ns)
    try:
        yield
    finally:
        deactivate()
