"""Resilient experiment harness for the table/figure suite.

Lives in the fault layer (it is the consumer-facing face of chaos
mode: retries under reseeded fault plans, crash-surviving process
pools) so the conformance machinery can drive it without importing the
app-layer ``repro.experiments`` package;
``repro.experiments.runner`` re-exports everything for compatibility.

Wraps each experiment in a wall-clock timeout, retries transient faults
with exponential backoff under a reseeded fault plan, checkpoints
partial artifacts, and records a structured outcome per experiment —
one bad experiment degrades to a report entry instead of killing the
suite. ``scripts/run_paper.py`` is a thin CLI over this module.

Outcome semantics:

* ``ok``       — succeeded on the first attempt;
* ``retried``  — succeeded after ≥1 transient-fault retry;
* ``degraded`` — every attempt failed, but only with transient
  (retryable) errors; partial checkpoints exist;
* ``failed``   — a non-retryable error or the wall-clock timeout.

Parallelism: ``jobs > 1`` fans independent experiments out over a
``ProcessPoolExecutor``. Every experiment builds its own seeded
simulator/node, so per-experiment results are bit-identical to a serial
run; outcomes are reported in submission order. Builders must be
picklable (module-level functions / ``functools.partial``, not
lambdas). Under chaos mode each worker process arms the same chaos seed
with fresh counters, so a parallel chaos run is deterministic but its
per-experiment fault plans differ from a serial suite's (where the
plan depends on how many nodes earlier experiments built).
"""

from __future__ import annotations

import json
import time
import traceback
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.errors import TransientFaultError
from repro.faults import chaos
from repro.faults.plan import DEFAULT_PROFILE, FaultProfile
from repro.util.retry import DEFAULT_RETRYABLE, Backoff


@dataclass(frozen=True)
class ExperimentSpec:
    """One runnable table/figure: a name and a zero-argument builder
    returning the rendered artifact text."""

    name: str
    build: Callable[[], str]
    timeout_s: float = 600.0


@dataclass
class ExperimentOutcome:
    name: str
    status: str                  # ok | retried | degraded | failed
    attempts: int
    duration_s: float
    error: str | None = None
    artifact: str | None = None
    text: str | None = None      # rendered output (None unless ok/retried)

    def record(self) -> dict:
        """The deterministic fields (no wall-clock durations/paths)."""
        return {"name": self.name, "status": self.status,
                "attempts": self.attempts, "error": self.error}

    def to_dict(self) -> dict:
        out = self.record()
        out["duration_s"] = round(self.duration_s, 3)
        out["artifact"] = self.artifact
        return out


@dataclass
class SuiteReport:
    outcomes: list[ExperimentOutcome] = field(default_factory=list)

    @property
    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for o in self.outcomes:
            out[o.status] = out.get(o.status, 0) + 1
        return out

    @property
    def hard_failures(self) -> list[ExperimentOutcome]:
        return [o for o in self.outcomes if o.status == "failed"]

    def records(self) -> list[dict]:
        return [o.record() for o in self.outcomes]

    def to_json(self) -> str:
        return json.dumps({"counts": self.counts,
                           "experiments": [o.to_dict()
                                           for o in self.outcomes]},
                          indent=2, sort_keys=True)

    def to_stable_json(self) -> str:
        """Byte-stable report: only the deterministic per-experiment
        fields (no wall-clock durations, no absolute artifact paths),
        so a committed report matches a fresh run of the same suite
        byte for byte. Ends with a newline."""
        return json.dumps({"counts": self.counts,
                           "experiments": self.records()},
                          indent=2, sort_keys=True) + "\n"

    def render(self) -> str:
        width = max((len(o.name) for o in self.outcomes), default=4)
        lines = ["experiment outcomes:"]
        for o in self.outcomes:
            line = (f"  {o.name:<{width}}  {o.status:<8}  "
                    f"attempts={o.attempts}  {o.duration_s:6.1f} s")
            if o.error:
                line += f"  [{o.error}]"
            lines.append(line)
        summary = ", ".join(f"{k}={v}" for k, v in sorted(self.counts.items()))
        lines.append(f"  total: {len(self.outcomes)} ({summary or 'empty'})")
        return "\n".join(lines)


class ExperimentRunner:
    """Runs a suite of :class:`ExperimentSpec` with fault resilience.

    ``artifact_writer(name, text) -> path`` checkpoints artifacts (both
    the final rendering and per-attempt partials); ``chaos_seed`` arms
    the fault-injection subsystem for the whole run, with the epoch
    bumped between retries so each attempt sees a fresh fault plan.
    """

    def __init__(
        self,
        specs: Sequence[ExperimentSpec],
        *,
        artifact_writer: Callable[[str, str], Path] | None = None,
        max_attempts: int = 3,
        backoff: Backoff = Backoff(initial_s=0.02, max_delay_s=0.5),
        retry_on: tuple[type[BaseException], ...] = DEFAULT_RETRYABLE,
        sleep: Callable[[float], None] = time.sleep,
        chaos_seed: int | None = None,
        chaos_profile: FaultProfile = DEFAULT_PROFILE,
        progress: Callable[[ExperimentOutcome], None] | None = None,
        jobs: int = 1,
    ) -> None:
        if max_attempts < 1:
            raise ValueError("need at least one attempt")
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.specs = {s.name: s for s in specs}
        self.artifact_writer = artifact_writer
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.retry_on = retry_on
        self.sleep = sleep
        self.chaos_seed = chaos_seed
        self.chaos_profile = chaos_profile
        self.progress = progress
        self.jobs = jobs
        # One timeout-guard executor reused across attempts and
        # experiments; replaced only when a timed-out builder wedges its
        # worker thread (see _call_with_timeout) and torn down in
        # close(). Spawning one per attempt and shutting it down with
        # wait=False leaked a thread per retry across a long suite.
        self._executor: ThreadPoolExecutor | None = None

    # ---- public API -------------------------------------------------------

    def run(self, names: Sequence[str] | None = None) -> SuiteReport:
        selected = list(names) if names is not None else list(self.specs)
        unknown = [n for n in selected if n not in self.specs]
        if unknown:
            raise KeyError(f"unknown experiment ids {unknown}; "
                           f"valid: {sorted(self.specs)}")
        if self.jobs > 1:
            return self._run_parallel(selected)
        report = SuiteReport()
        chaos_armed = self.chaos_seed is not None
        if chaos_armed:
            chaos.activate(self.chaos_seed, profile=self.chaos_profile)
        try:
            for name in selected:
                outcome = self._run_one(self.specs[name])
                report.outcomes.append(outcome)
                if self.progress is not None:
                    self.progress(outcome)
        finally:
            if chaos_armed:
                chaos.deactivate()
            self.close()
        return report

    def close(self) -> None:
        """Release the timeout-guard executor (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    # ---- parallel mode ----------------------------------------------------

    def _run_parallel(self, selected: list[str]) -> SuiteReport:
        """Fan the suite out over a process pool, surviving worker death.

        A dead worker breaks the whole ``ProcessPoolExecutor``: every
        unfinished future raises ``BrokenExecutor``, including
        experiments that were never at fault. Rebuild the pool and
        requeue exactly those unfinished experiments (completed results
        are kept), up to ``max_attempts`` pool generations; an
        experiment that then completes is reported ``retried``, not
        ``failed`` — only experiments whose workers die in every
        generation fail.
        """
        report = SuiteReport()
        results: dict[str, ExperimentOutcome] = {}
        remaining = list(selected)
        generation = 0

        # Checkpoint artifacts and report progress as results land (not
        # at the end), so an interrupted parallel suite still flushes
        # everything that finished before the signal.
        def finish(name: str, outcome: ExperimentOutcome) -> None:
            if outcome.text is not None and self.artifact_writer is not None:
                outcome.artifact = str(
                    self.artifact_writer(outcome.name, outcome.text))
            results[name] = outcome
            if self.progress is not None:
                self.progress(outcome)

        while remaining:
            generation += 1
            last_break: BaseException | None = None
            pool = ProcessPoolExecutor(max_workers=self.jobs)
            try:
                futures = {
                    name: pool.submit(
                        _run_spec_in_worker, self.specs[name],
                        self.max_attempts, self.backoff, self.retry_on,
                        self.chaos_seed, self.chaos_profile)
                    for name in remaining
                }
                requeue: list[str] = []
                for name in remaining:
                    try:
                        outcome = futures[name].result()
                    except BrokenExecutor as exc:
                        last_break = exc
                        requeue.append(name)
                        continue
                    if generation > 1:
                        outcome.attempts += generation - 1
                        if outcome.status == "ok":
                            outcome.status = "retried"
                    finish(name, outcome)
                remaining = requeue
            except BaseException:
                # Signal-driven unwind (KeyboardInterrupt or the
                # driver's interrupt exception): abandon in-flight
                # experiments instead of blocking a graceful shutdown
                # on them; the caller flushes what finished. SIGKILL,
                # not terminate(): forked workers inherit the parent's
                # signal handlers, so SIGTERM gets absorbed into the
                # worker's own harness while its builder thread keeps
                # computing — and interpreter exit would then block on
                # joining the worker until the longest in-flight
                # experiment completes.
                # No explicit shutdown(): killing the workers breaks
                # the pool and its own machinery reaps the management
                # thread at exit (shutdown(wait=False) here would close
                # the wakeup pipe the atexit hook still writes to).
                for proc in list((getattr(pool, "_processes", None)
                                  or {}).values()):
                    proc.kill()
                raise
            pool.shutdown(wait=True)
            if remaining:
                if generation >= self.max_attempts:
                    for name in remaining:
                        finish(name, ExperimentOutcome(
                            name=name, status="failed", attempts=generation,
                            duration_s=0.0,
                            error=f"worker process died: {last_break}"))
                    remaining = []
                else:
                    self.sleep(self.backoff.delay_s(generation))
        report.outcomes.extend(results[name] for name in selected)
        return report

    # ---- internals --------------------------------------------------------

    def _run_one(self, spec: ExperimentSpec) -> ExperimentOutcome:
        # repro-lint: disable=det-wallclock — harness-side duration report; never enters simulator state
        t0 = time.monotonic()
        retryable = tuple(self.retry_on)
        last_error: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            try:
                text = self._call_with_timeout(spec)
            except FutureTimeout:
                return self._finish(spec, t0, "failed", attempt,
                                    f"timeout after {spec.timeout_s:.0f} s")
            except retryable as exc:
                last_error = exc
                self._checkpoint_attempt(spec, attempt, exc)
                if attempt < self.max_attempts:
                    chaos.bump_epoch()      # reseed the fault plan
                    self.sleep(self.backoff.delay_s(attempt))
            except Exception as exc:        # noqa: BLE001 — suite must survive
                self._checkpoint_attempt(spec, attempt, exc)
                return self._finish(spec, t0, "failed", attempt,
                                    f"{type(exc).__name__}: {exc}")
            else:
                status = "ok" if attempt == 1 else "retried"
                return self._finish(spec, t0, status, attempt, None, text)
        return self._finish(
            spec, t0, "degraded", self.max_attempts,
            f"{type(last_error).__name__}: {last_error}")

    def _call_with_timeout(self, spec: ExperimentSpec) -> str:
        """Run the builder under a wall-clock timeout.

        A timed-out builder thread cannot be killed, but the simulation
        it drives is pure computation that ends with its event horizon;
        the runner stops waiting and reports the experiment as failed.
        The single-worker executor is reused across attempts and
        experiments; only a timeout (which wedges the worker thread)
        forces a replacement, so a retried suite no longer accumulates
        one leaked thread per attempt.
        """
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix="experiment-runner")
        future = self._executor.submit(spec.build)
        try:
            return future.result(timeout=spec.timeout_s)
        except FutureTimeout:
            # The worker thread is stuck inside spec.build; abandon the
            # executor (cancelling anything queued) so the next
            # experiment gets a fresh worker instead of queueing behind
            # the wedged one.
            self.close()
            raise

    def _finish(self, spec: ExperimentSpec, t0: float, status: str,
                attempts: int, error: str | None,
                text: str | None = None) -> ExperimentOutcome:
        outcome = ExperimentOutcome(
            name=spec.name, status=status, attempts=attempts,
            # repro-lint: disable=det-wallclock — harness-side duration report; never enters simulator state
            duration_s=time.monotonic() - t0, error=error, text=text)
        if text is not None and self.artifact_writer is not None:
            outcome.artifact = str(self.artifact_writer(spec.name, text))
        return outcome

    def _checkpoint_attempt(self, spec: ExperimentSpec, attempt: int,
                            exc: BaseException) -> None:
        """Persist what a failed attempt knew (the partial artifact)."""
        if self.artifact_writer is None:
            return
        text = (f"attempt {attempt}/{self.max_attempts} of "
                f"'{spec.name}' failed: {type(exc).__name__}: {exc}\n\n"
                + "".join(traceback.format_exception(exc)))
        self.artifact_writer(f"{spec.name}.attempt{attempt}", text)


def _run_spec_in_worker(
    spec: ExperimentSpec,
    max_attempts: int,
    backoff: Backoff,
    retry_on: tuple[type[BaseException], ...],
    chaos_seed: int | None,
    chaos_profile: FaultProfile,
) -> ExperimentOutcome:
    """Run one experiment in a pool worker process.

    A fresh single-spec runner reproduces the serial retry/timeout/chaos
    semantics; artifacts are written by the parent (the outcome carries
    the rendered text home).
    """
    runner = ExperimentRunner(
        [spec], max_attempts=max_attempts, backoff=backoff,
        retry_on=retry_on, chaos_seed=chaos_seed,
        chaos_profile=chaos_profile)
    return runner.run([spec.name]).outcomes[0]
