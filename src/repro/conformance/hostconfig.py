"""The canonical parity host configuration, shared across layers.

One scenario, two write paths: :func:`configure_direct` drives the
internal Python API, :func:`configure_hostif` performs the equivalent
mutations purely through the virtual sysfs tree and MSR registers.
:func:`render_state` dumps the full-precision node state so any
divergence between the two paths shows up as a plain text diff.

This lives in the conformance layer (not in
``repro.experiments.hostif_parity``, which consumes it) because the
trace/scenario machinery and the service's dataset CLI need the same
configuration — an upward import from conformance into experiments
would invert the layer map.  The experiment keeps re-exporting the old
underscore names for compatibility.

The scenario: FIRESTARTER on socket 0's first six cores, pinned to
1.8 GHz via the userspace governor; C6 disabled on the next six (idle)
cores; EPB performance; turbo off; uncore window narrowed so the 0x620
clamp is visible in the granted uncore frequency.  It deliberately
crosses every hostif surface: userspace governor + setspeed (cpufreq
sysfs), EPB (sysfs), turbo off (IA32_MISC_ENABLE), a narrowed uncore
window (MSR 0x620), and C6 disabled on the idle cores (cpuidle sysfs).
"""

from __future__ import annotations

from repro.cpufreq.policy import Governor
from repro.cstates.states import CState
from repro.hostif import HostMsr, VirtualHost
from repro.hostif.msr_regs import (
    encode_misc_enable,
    encode_uncore_ratio_limit,
)
from repro.pcu.epb import Epb
from repro.units import ghz

_SYS = "/sys/devices/system/cpu"

ACTIVE_CPUS = (0, 1, 2, 3, 4, 5)
C6_DISABLED_CPUS = (6, 7, 8, 9, 10, 11)
PIN_GHZ = 1.8
UNCORE_MIN_GHZ = 1.3
UNCORE_MAX_GHZ = 1.5


def configure_direct(host: VirtualHost) -> None:
    """The internal-API path."""
    node = host.node
    host.cpufreq.set_governor(Governor.USERSPACE)
    for cpu in ACTIVE_CPUS:
        # The same two calls sysfs setspeed performs, in the same order.
        host.cpufreq.policy(cpu).set_speed(ghz(PIN_GHZ))
        node.set_pstate([cpu], ghz(PIN_GHZ))
    node.set_epb(Epb.PERFORMANCE)
    node.set_turbo(False)
    node.set_uncore_limits(ghz(UNCORE_MIN_GHZ), ghz(UNCORE_MAX_GHZ))
    for cpu in C6_DISABLED_CPUS:
        node.core(cpu).set_cstate_disabled(CState.C6, True)


def configure_hostif(host: VirtualHost) -> None:
    """The same configuration, purely through sysfs files and MSRs."""
    for cpu in host.cpu_ids:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpufreq/scaling_governor",
                         "userspace")
    for cpu in ACTIVE_CPUS:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpufreq/scaling_setspeed",
                         str(int(PIN_GHZ * 1e6)))
    # Package-scoped registers: one write per socket (cpu 0 and the
    # first cpu of socket 1).
    per_socket = [s.cores[0].core_id for s in host.node.sockets]
    for cpu in per_socket:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/power/energy_perf_bias", "0")
        host.msr.write(cpu, HostMsr.IA32_MISC_ENABLE,
                       encode_misc_enable(turbo_enabled=False))
        host.msr.write(cpu, HostMsr.MSR_UNCORE_RATIO_LIMIT,
                       encode_uncore_ratio_limit(ghz(UNCORE_MIN_GHZ),
                                                 ghz(UNCORE_MAX_GHZ)))
    for cpu in C6_DISABLED_CPUS:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpuidle/state2/disable", "1")


CONFIGURE = {"direct": configure_direct, "hostif": configure_hostif}


def configure_tick_heavy_direct(host: VirtualHost) -> None:
    """Tick-heavy scenario knobs, internal-API path.

    Turbo stays on and EPB goes to performance so the fully loaded node
    runs TDP-bound — the PCU's turbo dither re-decides every quantum,
    which is exactly the high-churn regime the tick-heavy golden trace
    and the perf gate are meant to pin down.
    """
    node = host.node
    node.set_epb(Epb.PERFORMANCE)
    node.set_turbo(True)


def configure_tick_heavy_hostif(host: VirtualHost) -> None:
    """The same two knobs, purely through sysfs and MSR writes."""
    per_socket = [s.cores[0].core_id for s in host.node.sockets]
    for cpu in per_socket:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/power/energy_perf_bias", "0")
        host.msr.write(cpu, HostMsr.IA32_MISC_ENABLE,
                       encode_misc_enable(turbo_enabled=True))


TICK_HEAVY_CONFIGURE = {"direct": configure_tick_heavy_direct,
                        "hostif": configure_tick_heavy_hostif}


def render_state(host: VirtualHost) -> str:
    """Full-precision state dump — any divergence shows as a text diff."""
    node = host.node
    lines = [f"t_ns={node.sim.now_ns}"]
    for cpu in (*ACTIVE_CPUS, *C6_DISABLED_CPUS):
        core = node.core(cpu)
        lines.append(
            f"cpu{cpu} freq={core.freq_hz!r} req={core.requested_hz!r} "
            f"cstate={core.cstate.name} aperf={core.counters.aperf!r} "
            f"mperf={core.counters.mperf!r}")
    for socket in node.sockets:
        first = socket.cores[0].core_id
        pkg = host.msr.read(first, HostMsr.MSR_PKG_ENERGY_STATUS)
        dram = host.msr.read(first, HostMsr.MSR_DRAM_ENERGY_STATUS)
        ratio_limit = host.msr.read(first, HostMsr.MSR_UNCORE_RATIO_LIMIT)
        lines.append(
            f"socket{socket.socket_id} uncore={socket.uncore.freq_hz!r} "
            f"pkg_counter={pkg} dram_counter={dram} "
            f"uncore_ratio_limit={ratio_limit:#x}")
    lines.append(f"ac_energy_j={node.ac_energy_j!r}")
    return "\n".join(lines)
