"""Differential conformance: one experiment, every execution mode.

The simulator claims that its execution strategies are *observationally
identical*: steady-state fast path on or off, configuration through the
direct API or through the virtual host interface, executed serially or
inside pool worker processes — same seed, same events, bit for bit. The
differential driver runs the canonical conformance scenario across all
four (fastpath × variant) modes, repeats the sweep under each chaos
profile, re-runs every manifest through the parallel experiment runner
(``jobs=N``), and reports the **first divergent event with context**
when any pair disagrees.

Cross-variant comparisons ignore ``hostif-write`` events — they exist
only on the host-interface path by construction (they *are* the
configuration) — everything else must match exactly.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field

from repro.conformance.recorder import Divergence, Trace, diff_traces
from repro.conformance.scenario import (
    CHAOS_PROFILES,
    ScenarioManifest,
    make_manifest,
    run_scenario,
)
from repro.faults.runner import ExperimentRunner, ExperimentSpec
from repro.units import ms

#: The four execution modes; the first is the comparison baseline.
MODES: tuple[tuple[bool, str], ...] = (
    (True, "direct"), (True, "hostif"),
    (False, "direct"), (False, "hostif"))

#: Event kinds legitimately asymmetric between variants.
CROSS_VARIANT_IGNORE = frozenset({"hostif-write"})


def mode_key(fastpath: bool, variant: str) -> str:
    return f"{variant}/fastpath-{'on' if fastpath else 'off'}"


def _trace_jsonl(manifest_dict: dict) -> str:
    """Pool-worker builder: manifest dict in, canonical trace text out.

    Module-level (picklable) so :class:`ExperimentRunner` can fan it out
    over a ``ProcessPoolExecutor``; the canonical text rides home in the
    outcome and is byte-compared against the serial run.
    """
    return run_scenario(ScenarioManifest.from_dict(manifest_dict)).to_jsonl()


@dataclass(frozen=True)
class ModeCheck:
    """One mode's verdicts for one chaos configuration."""

    profile: str            # "" = no chaos
    fastpath: bool
    variant: str
    events: int
    fault_fires: int
    #: first divergence vs the baseline mode (None = identical, and
    #: always None for the baseline itself)
    divergence: Divergence | None
    #: serial trace text vs the same manifest run under jobs=N
    #: (None = parallel pass skipped, e.g. the worker died)
    parallel_identical: bool | None
    workload: str = "firestarter"

    @property
    def key(self) -> str:
        return mode_key(self.fastpath, self.variant)

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.parallel_identical is not False


@dataclass
class DifferentialReport:
    seed: int
    measure_ns: int
    jobs: int
    checks: list[ModeCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.checks) and all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[ModeCheck]:
        return [c for c in self.checks if not c.ok]

    def render(self) -> str:
        lines = [
            "Differential conformance: 4 execution modes x "
            f"{{no chaos, {', '.join(sorted(CHAOS_PROFILES))}}} "
            "+ tick-heavy, "
            f"serial vs jobs={self.jobs}",
            f"(seed {self.seed}, {self.measure_ns / 1e6:.0f} ms simulated "
            "per run; cross-variant diffs ignore hostif-write)",
            "",
        ]
        for check in self.checks:
            chaos = check.profile or "no chaos"
            if check.workload != "firestarter":
                chaos = f"{check.workload}|{chaos}"
            serial = ("baseline" if check.divergence is None
                      and (check.fastpath, check.variant) == MODES[0]
                      else "bit-identical" if check.divergence is None
                      else "DIVERGED")
            par = {True: "bit-identical", False: "DIVERGED",
                   None: "skipped"}[check.parallel_identical]
            lines.append(
                f"  [{chaos:>12}] {check.key:<20} {check.events:>4} events "
                f"({check.fault_fires} faults)  vs baseline: {serial:<14} "
                f"vs jobs={self.jobs}: {par}")
            if check.divergence is not None:
                lines.append("    " + check.divergence.render()
                             .replace("\n", "\n    "))
        lines.append("")
        lines.append("CONFORMANCE OK" if self.ok else
                     f"CONFORMANCE FAIL: {len(self.failures)} mode(s) "
                     "diverged")
        return "\n".join(lines)


def run_differential(seed: int = 271, measure_ns: int = ms(10),
                     jobs: int = 4, sanitize: bool = False,
                     chaos_profiles: tuple[str, ...] = (
                         "", *sorted(CHAOS_PROFILES)),
                     workloads: tuple[str, ...] = (
                         "firestarter", "tick-heavy"),
                     ) -> DifferentialReport:
    """Run the full differential sweep and collect verdicts.

    The firestarter workload sweeps every chaos profile; the tick-heavy
    workload (all cores churning under TDP-bound turbo dither) runs the
    4 execution modes without chaos — its point is the vectorized hot
    path, and the fault machinery is already covered by the firestarter
    passes.
    """
    report = DifferentialReport(seed=seed, measure_ns=measure_ns, jobs=jobs)
    sweeps = [(w, p)
              for w in workloads
              for p in (chaos_profiles if w == "firestarter" else ("",))]
    for workload, profile in sweeps:
        manifests = [
            make_manifest(seed=seed, measure_ns=measure_ns, fastpath=fp,
                          variant=var, chaos_profile=profile,
                          sanitize=sanitize, workload=workload)
            for fp, var in MODES]
        traces = [run_scenario(m) for m in manifests]
        parallel_texts = _parallel_texts(manifests, jobs)
        baseline = traces[0]
        for (fp, var), manifest, trace, par_text in zip(
                MODES, manifests, traces, parallel_texts):
            divergence = None
            if trace is not baseline:
                divergence = diff_traces(baseline, trace,
                                         ignore_kinds=CROSS_VARIANT_IGNORE)
            parallel_identical = (None if par_text is None
                                  else par_text == trace.to_jsonl())
            report.checks.append(ModeCheck(
                profile=profile, fastpath=fp, variant=var,
                workload=workload,
                events=len(trace.events),
                fault_fires=len(trace.of_kind("fault-fire")),
                divergence=divergence,
                parallel_identical=parallel_identical))
    return report


def _parallel_texts(manifests: list[ScenarioManifest],
                    jobs: int) -> list[str | None]:
    """Each manifest's trace text as produced inside a pool worker."""
    specs = [
        ExperimentSpec(
            name=f"mode{i}",
            build=functools.partial(_trace_jsonl, m.to_dict()))
        for i, m in enumerate(manifests)]
    runner = ExperimentRunner(specs, jobs=max(2, jobs))
    outcomes = runner.run().outcomes
    return [o.text for o in outcomes]


def first_divergence(expected: Trace, actual: Trace,
                     ignore_kinds: frozenset[str] = frozenset(),
                     ) -> Divergence | None:
    """Thin re-export with the driver's semantics (used by tests)."""
    return diff_traces(expected, actual, ignore_kinds=ignore_kinds)
