"""``python -m repro.conformance`` — the ``make conformance`` gate.

Two checks, both hard-fail:

1. replay the committed golden trace (bit-identical event stream under
   the current tree, schema version/digest verified first);
2. run the differential sweep: 4 execution modes x {no chaos, every
   chaos profile}, serial vs ``jobs=N``, under the runtime sanitizer so
   RNG draw ledgers are part of the compared stream.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.conformance.differential import run_differential
from repro.conformance.replay import replay_file
from repro.errors import ConformanceError
from repro.units import ms

DEFAULT_GOLDENS = (
    Path("tests/golden/scenario_default.trace.jsonl"),
    Path("tests/golden/scenario_tick_heavy.trace.jsonl"),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="replay the golden trace and run the differential "
                    "conformance sweep")
    parser.add_argument("--golden", type=Path, action="append",
                        default=None,
                        help="golden trace(s) to replay; repeatable "
                             "(default: the committed goldens under "
                             "tests/golden/)")
    parser.add_argument("--skip-golden", action="store_true",
                        help="skip the golden-trace replay")
    parser.add_argument("--measure-ms", type=int, default=10,
                        help="simulated time per differential run "
                             "(default 10 ms)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel pass "
                             "(default 4)")
    parser.add_argument("--no-sanitize", action="store_true",
                        help="leave the RNG draw ledger out of the "
                             "differential traces")
    args = parser.parse_args(argv)

    failed = False
    if not args.skip_golden:
        goldens = args.golden if args.golden else list(DEFAULT_GOLDENS)
        for golden in goldens:
            if not golden.exists():
                print(f"error: golden trace {golden} not found "
                      "(run scripts/regen_golden_trace.py)", file=sys.stderr)
                return 2
            try:
                report = replay_file(golden)
            except ConformanceError as exc:
                print(f"golden replay error: {exc}", file=sys.stderr)
                return 1
            print(report.render())
            failed |= not report.match

    diff = run_differential(measure_ns=ms(args.measure_ms), jobs=args.jobs,
                            sanitize=not args.no_sanitize)
    print(diff.render())
    failed |= not diff.ok
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
