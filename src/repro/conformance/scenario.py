"""The canonical conformance scenario: manifest in, recorded trace out.

A :class:`ScenarioManifest` is the complete, serializable recipe for one
simulated run: seed, simulated duration, execution mode (steady-state
fast path on/off, configuration through the direct API or through the
virtual host interface), an optional explicit :class:`FaultPlan`, and
whether the runtime sanitizer's RNG ledger should be folded into the
trace. :func:`run_scenario` executes the recipe under a
:class:`~repro.conformance.recorder.ConformanceRecorder` and returns the
:class:`~repro.conformance.recorder.Trace` — the same manifest must
always yield the byte-identical trace, which is exactly what the
replayer and the differential driver assert.

The workload and configuration reuse the hostif parity experiment's
scenario (FIRESTARTER on six cores pinned at 1.8 GHz, EPB performance,
turbo off, narrowed uncore window, C6 disabled on the idle cores), so
the conformance stream exercises every traced subsystem: p-state grants,
c-state transitions, RAPL refreshes, host-interface writes, and — under
a chaos profile — fault firings.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass

from repro.conformance import schema as _schema
from repro.conformance.recorder import (
    ConformanceRecorder,
    Trace,
    content_digest,
)
from repro.engine import sanitize
from repro.engine.simulator import Simulator
from repro.errors import ConformanceError
from repro.conformance.hostconfig import (
    ACTIVE_CPUS as _ACTIVE_CPUS,
    CONFIGURE as _CONFIGURE,
    TICK_HEAVY_CONFIGURE as _TICK_HEAVY_CONFIGURE,
    render_state as _render_state,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    NUMA_LINK_STRESS,
    PSU_BROWNOUT_STRESS,
    FaultPlan,
)
from repro.hostif import VirtualHost
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import Node, build_node
from repro.units import ms, us
from repro.workloads import micro
from repro.workloads.firestarter import firestarter

#: Selectable scenario workloads. ``firestarter`` is the canonical
#: hostif-parity configuration (six pinned cores, turbo off);
#: ``tick-heavy`` loads every core with sub-quantum compute/AVX/nap
#: churn under active turbo, so the trace captures the TDP-bound dither
#: and c-state traffic the vectorized hot path optimizes.
WORKLOADS = ("firestarter", "tick-heavy")

#: Stress profiles re-rated for conformance windows. The stock chaos
#: profiles are tuned for multi-second paper runs (~0.4 events/s — a
#: millisecond-scale conformance run would see none); these keep the
#: single-kind concentration but push enough events into a ~10-20 ms
#: window that the fault path, including the end-of-window restores,
#: is actually exercised.
CHAOS_PROFILES = {
    "numa-link": dataclasses.replace(
        NUMA_LINK_STRESS, numa_link_rate=250.0,
        numa_link_ns_range=(us(80), us(600))),
    "psu-brownout": dataclasses.replace(
        PSU_BROWNOUT_STRESS, psu_brownout_rate=250.0,
        psu_brownout_ns_range=(us(80), us(600))),
}


def chaos_plan(profile_name: str, seed: int, horizon_ns: int) -> FaultPlan:
    """Deterministic fault plan for a named conformance chaos profile."""
    profile = CHAOS_PROFILES.get(profile_name)
    if profile is None:
        raise ConformanceError(
            f"unknown chaos profile {profile_name!r} "
            f"(valid: {', '.join(sorted(CHAOS_PROFILES))})")
    return FaultPlan.generate(seed, horizon_ns=horizon_ns, profile=profile)


@dataclass(frozen=True)
class ScenarioManifest:
    """Everything needed to reproduce one conformance run."""

    seed: int = 271
    measure_ns: int = ms(20)
    fastpath: bool = True
    variant: str = "direct"        # "direct" | "hostif"
    chaos_profile: str = ""        # name the fault plan was drawn from
    fault_plan: FaultPlan | None = None
    sanitize: bool = False         # fold the RNG ledger into the trace
    workload: str = "firestarter"  # see WORKLOADS

    def __post_init__(self) -> None:
        if self.variant not in _CONFIGURE:
            raise ConformanceError(
                f"unknown variant {self.variant!r} "
                f"(valid: {', '.join(sorted(_CONFIGURE))})")
        if self.workload not in WORKLOADS:
            raise ConformanceError(
                f"unknown workload {self.workload!r} "
                f"(valid: {', '.join(WORKLOADS)})")
        if self.measure_ns <= 0:
            raise ConformanceError("measure_ns must be positive")

    def to_dict(self) -> dict:
        return {"seed": self.seed, "measure_ns": self.measure_ns,
                "fastpath": self.fastpath, "variant": self.variant,
                "chaos_profile": self.chaos_profile,
                "fault_plan": (self.fault_plan.to_dict()
                               if self.fault_plan is not None else None),
                "sanitize": self.sanitize,
                "workload": self.workload}

    def digest(self) -> str:
        """Content digest of the manifest (full sha256 hex).

        Two manifests digest equal iff they describe the identical run
        recipe — the conformance guarantee then promises identical
        traces, which is what lets the service cache serve results by
        digest instead of by re-execution.
        """
        return content_digest(self.to_dict(), length=64)

    def cache_key(self, dataset_digest: str = "") -> str:
        """The result-cache identity of executing this manifest.

        Keyed on (manifest digest, schema version + digest, dataset
        digest): a schema bump or an event-catalog edit moves every
        key, and the same sweep against a different host dataset never
        aliases. Shared by the experiment service's result cache and
        anything else that wants to address "the outcome of this run".
        """
        return content_digest({
            "manifest_digest": self.digest(),
            "schema_version": _schema.SCHEMA_VERSION,
            "schema_digest": _schema.current_digest(),
            "dataset_digest": dataset_digest,
        }, length=32)

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioManifest":
        plan = data.get("fault_plan")
        return cls(seed=int(data["seed"]),
                   measure_ns=int(data["measure_ns"]),
                   fastpath=bool(data["fastpath"]),
                   variant=str(data["variant"]),
                   chaos_profile=str(data.get("chaos_profile", "")),
                   fault_plan=(FaultPlan.from_dict(plan)
                               if plan is not None else None),
                   sanitize=bool(data.get("sanitize", False)),
                   workload=str(data.get("workload", "firestarter")))


def make_manifest(seed: int = 271, measure_ns: int = ms(20),
                  fastpath: bool = True, variant: str = "direct",
                  chaos_profile: str = "", sanitize: bool = False,
                  workload: str = "firestarter") -> ScenarioManifest:
    """Build a manifest, drawing the fault plan when a profile is named."""
    plan = (chaos_plan(chaos_profile, seed, measure_ns)
            if chaos_profile else None)
    return ScenarioManifest(seed=seed, measure_ns=measure_ns,
                            fastpath=fastpath, variant=variant,
                            chaos_profile=chaos_profile, fault_plan=plan,
                            sanitize=sanitize, workload=workload)


def install_cstate_probes(recorder: ConformanceRecorder, node: Node) -> None:
    """Hook every core's c-state transitions into the recorder.

    The per-core hook slot stays ``None`` (zero hot-path cost) unless the
    active recorder actually wants ``cstate-switch`` events.
    """
    if not recorder.wants("cstate-switch"):
        return
    sim = node.sim
    for socket in node.sockets:
        for core in socket.cores:
            def hook(old, new, _core=core):
                recorder.emit(sim.now_ns, f"core{_core.core_id}",
                              "cstate-switch", core_id=_core.core_id,
                              from_state=old.name, to_state=new.name)
            core._cstate_hook = hook


def run_scenario(manifest: ScenarioManifest) -> Trace:
    """Execute the manifest and return its recorded trace."""
    restore = False
    if manifest.sanitize and not sanitize.enabled():
        sanitize.set_enabled(True)
        restore = True
    try:
        return _run(manifest)
    finally:
        if restore:
            sanitize.set_enabled(None)


def _run(manifest: ScenarioManifest) -> Trace:
    recorder = ConformanceRecorder()
    sim = Simulator(seed=manifest.seed, trace=recorder)
    node = build_node(sim, HASWELL_TEST_NODE)
    node.set_fastpath(manifest.fastpath)
    install_cstate_probes(recorder, node)
    host = VirtualHost(sim, node).start()
    if manifest.fault_plan is not None:
        FaultInjector(sim, node, manifest.fault_plan).arm()
    if manifest.workload == "tick-heavy":
        _TICK_HEAVY_CONFIGURE[manifest.variant](host)
        node.run_workload([c.core_id for c in node.all_cores],
                          micro.tick_heavy())
    else:
        _CONFIGURE[manifest.variant](host)
        node.run_workload(list(_ACTIVE_CPUS), firestarter())
    sim.run_for(manifest.measure_ns)
    # Trailer: the RNG draw ledger (when requested) and the end-of-run
    # state digest, so a trace diff catches divergent final state even
    # if every intermediate event happened to agree.
    if manifest.sanitize and sim.ledger is not None:
        for site, method, count in sim.ledger.entries:
            recorder.emit(sim.now_ns, "sanitize", "rng-draw",
                          site=site, method=method, count=count)
    state = _render_state(host)
    recorder.emit(sim.now_ns, "scenario", "run-end",
                  state_sha256=hashlib.sha256(
                      state.encode("utf-8")).hexdigest())
    return Trace(manifest=manifest.to_dict(), events=list(recorder.records))
