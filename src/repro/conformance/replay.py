"""Record a scenario to a trace file; replay one and assert equality.

Replay is the conformance contract in executable form: re-running the
manifest embedded in a recorded trace must reproduce the event stream
*event for event*. Before comparing, the replayer checks that the trace
was recorded under the schema this tree declares (version **and**
digest) — comparing streams across wire-format changes would report a
meaningless diff, so an incompatible trace raises
:class:`~repro.errors.TraceSchemaError` with regeneration instructions
instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.conformance import schema as _schema
from repro.conformance.recorder import Divergence, Trace, diff_traces
from repro.conformance.scenario import ScenarioManifest, run_scenario
from repro.errors import TraceSchemaError


def record(manifest: ScenarioManifest) -> Trace:
    """Run the manifest and return its trace (alias with intent)."""
    return run_scenario(manifest)


def record_to_file(manifest: ScenarioManifest, path: Path | str) -> Trace:
    trace = record(manifest)
    Path(path).write_text(trace.to_jsonl(), encoding="utf-8")
    return trace


@dataclass(frozen=True)
class ReplayReport:
    """Outcome of replaying one recorded trace."""

    manifest: dict
    recorded_events: int
    replayed_events: int
    divergence: Divergence | None

    @property
    def match(self) -> bool:
        return self.divergence is None

    def render(self) -> str:
        head = (f"replay: seed={self.manifest.get('seed')} "
                f"measure_ns={self.manifest.get('measure_ns')} "
                f"variant={self.manifest.get('variant')} "
                f"fastpath={self.manifest.get('fastpath')} "
                f"chaos={self.manifest.get('chaos_profile') or 'none'}")
        if self.match:
            return (f"{head}\n  OK: {self.recorded_events} events "
                    "reproduced bit-identically")
        return (f"{head}\n  MISMATCH: recorded {self.recorded_events} "
                f"events, replayed {self.replayed_events}\n"
                + "  " + self.divergence.render().replace("\n", "\n  "))


def check_schema_compat(trace: Trace) -> None:
    """Refuse traces recorded under a different wire format."""
    if trace.schema_version != _schema.SCHEMA_VERSION:
        raise TraceSchemaError(
            f"trace was recorded under schema version "
            f"{trace.schema_version}, this tree declares "
            f"{_schema.SCHEMA_VERSION}; regenerate the trace "
            "(scripts/regen_golden_trace.py for the committed golden)")
    digest = _schema.current_digest()
    if trace.schema_digest != digest:
        raise TraceSchemaError(
            f"trace schema digest {trace.schema_digest} does not match "
            f"the declared table ({digest}); the event catalog changed "
            "without a version bump, or the trace predates it — "
            "regenerate the trace")


def replay(trace: Trace) -> ReplayReport:
    """Re-execute the trace's manifest and compare event streams."""
    check_schema_compat(trace)
    manifest = ScenarioManifest.from_dict(trace.manifest)
    fresh = run_scenario(manifest)
    return ReplayReport(
        manifest=trace.manifest,
        recorded_events=len(trace.events),
        replayed_events=len(fresh.events),
        divergence=diff_traces(trace, fresh))


def replay_file(path: Path | str) -> ReplayReport:
    text = Path(path).read_text(encoding="utf-8")
    return replay(Trace.from_jsonl(text))
