"""Deterministic trace record/replay conformance subsystem.

Public surface:

* :mod:`repro.conformance.schema` — the versioned event catalog;
* :class:`~repro.conformance.recorder.ConformanceRecorder`,
  :class:`~repro.conformance.recorder.Trace`,
  :func:`~repro.conformance.recorder.diff_traces`;
* :class:`~repro.conformance.scenario.ScenarioManifest`,
  :func:`~repro.conformance.scenario.run_scenario`;
* :func:`~repro.conformance.replay.replay` /
  :func:`~repro.conformance.replay.record_to_file`;
* :func:`~repro.conformance.differential.run_differential`.

``python -m repro.conformance`` (= ``make conformance``) replays the
committed golden trace and runs the differential sweep.
"""

from repro.conformance.differential import (
    DifferentialReport,
    run_differential,
)
from repro.conformance.recorder import (
    ConformanceRecorder,
    Divergence,
    Trace,
    canonical_json,
    content_digest,
    diff_traces,
    sha256_hex,
)
from repro.conformance.replay import (
    ReplayReport,
    record,
    record_to_file,
    replay,
    replay_file,
)
from repro.conformance.scenario import (
    CHAOS_PROFILES,
    ScenarioManifest,
    make_manifest,
    run_scenario,
)
from repro.conformance.schema import (
    EVENT_SCHEMAS,
    SCHEMA_HISTORY,
    SCHEMA_VERSION,
    current_digest,
    validate_event,
)

__all__ = [
    "CHAOS_PROFILES",
    "ConformanceRecorder",
    "DifferentialReport",
    "Divergence",
    "EVENT_SCHEMAS",
    "ReplayReport",
    "SCHEMA_HISTORY",
    "SCHEMA_VERSION",
    "ScenarioManifest",
    "Trace",
    "canonical_json",
    "content_digest",
    "current_digest",
    "diff_traces",
    "sha256_hex",
    "make_manifest",
    "record",
    "record_to_file",
    "replay",
    "replay_file",
    "run_differential",
    "run_scenario",
    "validate_event",
]
