"""Declarative, versioned schemas for the conformance event stream.

Every event a :class:`~repro.conformance.recorder.ConformanceRecorder`
accepts is declared here as a typed record: an event kind plus an
ordered tuple of ``(field, type)`` pairs. The table is the single source
of truth for what a trace may contain — the recorder validates every
emitted payload against it, the canonical JSONL serialization follows
it, and the ``trace-schema`` rules of ``repro-lint`` hold it stable:

* the module must declare an integer ``SCHEMA_VERSION`` and an
  append-only ``SCHEMA_HISTORY`` of ``version -> digest`` entries;
* the digest of the declared table (see :func:`compute_digest`) must
  equal ``SCHEMA_HISTORY[SCHEMA_VERSION]`` — any edit that changes the
  wire format therefore fails lint until the version is bumped and a
  new history entry is appended.

Recorded traces embed their schema version and digest; the replayer
refuses to compare streams produced under different schemas instead of
reporting a meaningless event diff.

Field types are the JSON-compatible scalars (``int``, ``float``,
``str``, ``bool``) plus ``dict`` for open sub-records such as fault
parameters. Validation is strict: unknown kinds, missing fields, extra
fields, and type mismatches all raise
:class:`~repro.errors.TraceSchemaError` at emission time, so a
malformed event can never silently enter a golden trace.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import TraceSchemaError

#: Types an event field may declare.
FIELD_TYPES = ("int", "float", "str", "bool", "dict")

_PYTHON_TYPES = {
    "int": int,
    "float": float,
    "str": str,
    "bool": bool,
    "dict": dict,
}


@dataclass(frozen=True)
class EventField:
    """One typed field of an event record."""

    name: str
    type: str

    def __post_init__(self) -> None:
        if self.type not in FIELD_TYPES:
            raise TraceSchemaError(
                f"field {self.name!r}: unknown type {self.type!r} "
                f"(valid: {', '.join(FIELD_TYPES)})")


@dataclass(frozen=True)
class EventSchema:
    """The declared shape of one event kind."""

    kind: str
    fields: tuple[EventField, ...]

    def __post_init__(self) -> None:
        names = [f.name for f in self.fields]
        if len(names) != len(set(names)):
            raise TraceSchemaError(
                f"event {self.kind!r} declares a duplicate field")

    def validate(self, payload: dict) -> None:
        declared = {f.name: f.type for f in self.fields}
        missing = sorted(set(declared) - set(payload))
        extra = sorted(set(payload) - set(declared))
        if missing or extra:
            raise TraceSchemaError(
                f"event {self.kind!r}: payload fields do not match the "
                f"schema (missing: {missing or 'none'}, "
                f"unexpected: {extra or 'none'})")
        for name, type_name in declared.items():
            value = payload[name]
            expected = _PYTHON_TYPES[type_name]
            ok = isinstance(value, expected)
            if type_name in ("int", "float") and isinstance(value, bool):
                ok = False       # bool is an int subclass; keep types strict
            if not ok:
                raise TraceSchemaError(
                    f"event {self.kind!r}: field {name!r} must be "
                    f"{type_name}, got {type(value).__name__} ({value!r})")


def schema_table(*schemas: EventSchema) -> dict[str, EventSchema]:
    """Build the kind -> schema mapping, rejecting duplicate kinds."""
    table: dict[str, EventSchema] = {}
    for schema in schemas:
        if schema.kind in table:
            raise TraceSchemaError(f"duplicate event kind {schema.kind!r}")
        table[schema.kind] = schema
    return table


# ---- the event catalog (version 1) -----------------------------------------
# Editing anything inside EVENT_SCHEMAS changes the wire format: bump
# SCHEMA_VERSION, append the new digest to SCHEMA_HISTORY (repro-lint
# prints the expected value), and regenerate the golden traces.

EVENT_SCHEMAS = schema_table(
    # A PCU grant landing on a core after the voltage-ramp switch time.
    EventSchema("freq-apply", (
        EventField("core_id", "int"),
        EventField("from_hz", "float"),
        EventField("to_hz", "float"),
    )),
    # An uncore frequency retarget (UFS decision or 0x620 clamp).
    EventSchema("uncore-apply", (
        EventField("from_hz", "float"),
        EventField("to_hz", "float"),
        EventField("tdp_bound", "bool"),
    )),
    # One core changing c-state (includes disable-knob demotions).
    EventSchema("cstate-switch", (
        EventField("core_id", "int"),
        EventField("from_state", "str"),
        EventField("to_state", "str"),
    )),
    # The periodic RAPL refresh latching the visible energy counters.
    EventSchema("rapl-update", (
        EventField("socket", "int"),
        EventField("package", "int"),
        EventField("dram", "int"),
    )),
    # A planned fault firing (the injector's applied-fault record).
    EventSchema("fault-fire", (
        EventField("fault", "str"),
        EventField("params", "dict"),
    )),
    # A write through the virtual host interface (sysfs file or MSR).
    EventSchema("hostif-write", (
        EventField("target", "str"),
        EventField("value", "str"),
    )),
    # One run-length entry of the sanitizer's RNG draw ledger.
    EventSchema("rng-draw", (
        EventField("site", "str"),
        EventField("method", "str"),
        EventField("count", "int"),
    )),
    # End-of-run marker carrying the digest of the full state report.
    EventSchema("run-end", (
        EventField("state_sha256", "str"),
    )),
)

#: Current wire-format version. Bump together with SCHEMA_HISTORY.
SCHEMA_VERSION = 1

#: Append-only version -> digest history. The digest of the *current*
#: EVENT_SCHEMAS must be the last entry; ``repro-lint`` enforces this
#: statically and ``tests/test_conformance.py`` at runtime.
SCHEMA_HISTORY = {
    1: "2b9951529f955267",
}


def compute_digest(table: dict[str, EventSchema] | None = None) -> str:
    """Canonical 16-hex-digit digest of an event table.

    Kinds sorted, fields sorted by name — cosmetic reordering of the
    declaration does not change the digest, while adding, removing,
    renaming, or retyping anything does. The ``trace-schema-digest``
    lint rule computes the identical value from the AST of this module.
    """
    table = EVENT_SCHEMAS if table is None else table
    lines = []
    for kind in sorted(table):
        fields = ",".join(
            f"{f.name}:{f.type}"
            for f in sorted(table[kind].fields, key=lambda f: f.name))
        lines.append(f"{kind}({fields})")
    text = "\n".join(lines)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def current_digest() -> str:
    return compute_digest(EVENT_SCHEMAS)


def assert_schema_current() -> None:
    """Raise unless SCHEMA_HISTORY's latest entry matches the table."""
    digest = current_digest()
    recorded = SCHEMA_HISTORY.get(SCHEMA_VERSION)
    if recorded != digest:
        raise TraceSchemaError(
            f"EVENT_SCHEMAS digest {digest} does not match "
            f"SCHEMA_HISTORY[{SCHEMA_VERSION}] = {recorded}; bump "
            "SCHEMA_VERSION and append the new digest")


def validate_event(kind: str, payload: dict) -> None:
    schema = EVENT_SCHEMAS.get(kind)
    if schema is None:
        raise TraceSchemaError(
            f"unknown event kind {kind!r} "
            f"(declared: {', '.join(sorted(EVENT_SCHEMAS))})")
    schema.validate(payload)
