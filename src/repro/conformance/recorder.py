"""Schema-validated trace recording and the canonical trace format.

:class:`ConformanceRecorder` is a drop-in
:class:`~repro.engine.trace.TraceRecorder` that (a) subscribes to every
kind declared in :mod:`repro.conformance.schema`, (b) canonicalizes
payload values (NumPy scalars become native Python, ints promote to
float where the schema says float), and (c) validates each event at
emission time, so a malformed event fails the emitting run instead of
poisoning a recorded trace.

A :class:`Trace` bundles the recorded events with the manifest that can
reproduce them and the schema version/digest they were recorded under.
Serialization is canonical JSONL — one header line, then one line per
event with sorted keys and compact separators — so byte equality of two
trace files is exactly event-for-event equality of two runs, and
:func:`diff_traces` can report the first divergent event by comparing
canonical lines.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.conformance import schema as _schema
from repro.engine.trace import TraceRecord, TraceRecorder
from repro.errors import ConformanceError

#: Format tag stamped into every trace header line.
TRACE_FORMAT = "repro-conformance-trace"


def _canonical_value(value: Any) -> Any:
    """Collapse NumPy scalars (and nested containers) to native Python."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, dict):
        return {k: _canonical_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


def canonicalize_payload(kind: str, payload: dict[str, Any]) -> dict[str, Any]:
    """Return a schema-canonical copy of ``payload`` for ``kind``.

    NumPy scalars become native Python values, and integers promote to
    float where the schema declares a float field (frequencies are
    naturally written as ``1_800_000_000`` in places).
    """
    out = {k: _canonical_value(v) for k, v in payload.items()}
    declared = _schema.EVENT_SCHEMAS.get(kind)
    if declared is not None:
        for f in declared.fields:
            v = out.get(f.name)
            if (f.type == "float" and isinstance(v, int)
                    and not isinstance(v, bool)):
                out[f.name] = float(v)
    return out


def canonical_json(obj: Any) -> str:
    """The canonical JSON form shared by every durable artifact.

    Sorted keys, compact separators, NumPy scalars collapsed to native
    Python — byte equality of two canonical strings is exactly value
    equality of the underlying objects. Trace files, fleet shard
    checkpoints and fleet aggregate reports all serialize through here,
    so "byte-identical" means the same thing across subsystems.
    """
    return json.dumps(_canonical_value(obj), sort_keys=True,
                      separators=(",", ":"))


def sha256_hex(text: str) -> str:
    """The sha256 hex digest of a utf-8 text — the one hashing
    convention every durable artifact (traces, checkpoints, datasets,
    service cache entries) shares."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def content_digest(obj: Any, length: int = 16) -> str:
    """Content-address any canonical-JSON-able object.

    ``sha256(canonical_json(obj) + "\\n")`` truncated to ``length`` hex
    chars. Fleet plans key their checkpoint namespace through here, and
    the experiment service keys its result cache through here — one
    digest convention, so "same content" means the same thing in both
    subsystems.
    """
    return sha256_hex(canonical_json(obj) + "\n")[:length]


class ConformanceRecorder(TraceRecorder):
    """Records every declared event kind, canonicalized and validated."""

    def __init__(self) -> None:
        super().__init__(kinds=set(_schema.EVENT_SCHEMAS))

    def emit(self, time_ns: int, source: str, kind: str,
             **payload: Any) -> None:
        if not self.wants(kind):
            return
        canon = canonicalize_payload(kind, payload)
        _schema.validate_event(kind, canon)
        self.records.append(TraceRecord(time_ns, source, kind, canon))


def event_line(record: TraceRecord) -> str:
    """The canonical single-line JSON form of one event."""
    return json.dumps(
        {"t": record.time_ns, "src": record.source, "kind": record.kind,
         "data": record.payload},
        sort_keys=True, separators=(",", ":"))


@dataclass
class Trace:
    """A recorded event stream plus everything needed to reproduce it."""

    manifest: dict[str, Any]
    events: list[TraceRecord] = field(default_factory=list)
    schema_version: int = _schema.SCHEMA_VERSION
    schema_digest: str = ""

    def __post_init__(self) -> None:
        if not self.schema_digest:
            self.schema_digest = _schema.current_digest()

    # ---- serialization ---------------------------------------------------

    def header_line(self) -> str:
        return json.dumps(
            {"format": TRACE_FORMAT,
             "schema_version": self.schema_version,
             "schema_digest": self.schema_digest,
             "manifest": self.manifest},
            sort_keys=True, separators=(",", ":"))

    def event_lines(self) -> list[str]:
        return [event_line(r) for r in self.events]

    def to_jsonl(self) -> str:
        return "\n".join([self.header_line(), *self.event_lines()]) + "\n"

    def digest(self) -> str:
        """sha256 over the canonical JSONL bytes.

        Because serialization is canonical, two traces digest equal iff
        they are event-for-event (and manifest-for-manifest) identical —
        this is the identity the service result cache stores and
        re-verifies on every hit.
        """
        return sha256_hex(self.to_jsonl())

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [ln for ln in text.splitlines() if ln.strip()]
        if not lines:
            raise ConformanceError("empty trace file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise ConformanceError(f"unreadable trace header: {exc}") from exc
        if header.get("format") != TRACE_FORMAT:
            raise ConformanceError(
                f"not a conformance trace (format tag "
                f"{header.get('format')!r}, expected {TRACE_FORMAT!r})")
        events = []
        for i, line in enumerate(lines[1:], start=2):
            try:
                obj = json.loads(line)
                events.append(TraceRecord(
                    obj["t"], obj["src"], obj["kind"], obj["data"]))
            except (json.JSONDecodeError, KeyError) as exc:
                raise ConformanceError(
                    f"bad event on trace line {i}: {exc}") from exc
        return cls(manifest=header["manifest"], events=events,
                   schema_version=header["schema_version"],
                   schema_digest=header["schema_digest"])

    # ---- queries ---------------------------------------------------------

    def of_kind(self, kind: str) -> list[TraceRecord]:
        return [r for r in self.events if r.kind == kind]

    def kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for r in self.events:
            counts[r.kind] = counts.get(r.kind, 0) + 1
        return counts


@dataclass(frozen=True)
class Divergence:
    """The first point where two event streams disagree."""

    index: int               # position in the (filtered) event stream
    expected: str            # canonical line, or "<end of trace>"
    actual: str
    context: tuple[str, ...]  # up to the 3 common events just before

    def render(self) -> str:
        lines = [f"first divergence at event #{self.index}:"]
        for ctx in self.context:
            lines.append(f"      ... {ctx}")
        lines.append(f"  expected {self.expected}")
        lines.append(f"  actual   {self.actual}")
        return "\n".join(lines)


def diff_traces(expected: Trace, actual: Trace,
                ignore_kinds: frozenset[str] = frozenset()) -> Divergence | None:
    """First divergent event between two traces, or None when identical.

    ``ignore_kinds`` drops event kinds that are legitimately asymmetric
    before comparing — e.g. ``hostif-write`` events only exist on the
    host-interface variant of an otherwise identical run.
    """
    a = [event_line(r) for r in expected.events
         if r.kind not in ignore_kinds]
    b = [event_line(r) for r in actual.events
         if r.kind not in ignore_kinds]
    limit = min(len(a), len(b))
    for i in range(limit):
        if a[i] != b[i]:
            return Divergence(i, a[i], b[i], tuple(a[max(0, i - 3):i]))
    if len(a) != len(b):
        i = limit
        return Divergence(
            i,
            a[i] if i < len(a) else "<end of trace>",
            b[i] if i < len(b) else "<end of trace>",
            tuple(a[max(0, i - 3):i]))
    return None
