"""Figs. 7 and 8: L3/DRAM read bandwidth vs frequency and concurrency.

Fig. 7 compares *relative* bandwidth at maximum concurrency (normalized
to the base frequency) across architectures: on Haswell-EP, DRAM
bandwidth is independent of the core frequency (uncore pinned at max
under stalls) while L3 bandwidth tracks it; Sandy Bridge's tied uncore
makes DRAM proportional to core frequency; Westmere's fixed uncore makes
it flat.

Fig. 8 sweeps thread count x frequency on the Haswell node: DRAM read
bandwidth saturates at 8 cores and loses its frequency dependence at 10+,
L3 scales with both; SMT only helps at low concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import Series, SeriesBundle
from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.bwbench import BandwidthBenchmark
from repro.specs.node import (
    HASWELL_TEST_NODE,
    SANDY_BRIDGE_TEST_NODE,
    WESTMERE_TEST_NODE,
    NodeSpec,
)
from repro.system.node import build_node
from repro.units import ms

_ARCH_NODES: dict[str, NodeSpec] = {
    "Haswell-EP": HASWELL_TEST_NODE,
    "Sandy Bridge-EP": SANDY_BRIDGE_TEST_NODE,
    "Westmere-EP": WESTMERE_TEST_NODE,
}


def _bench_for(spec: NodeSpec, seed: int) -> BandwidthBenchmark:
    sim = Simulator(seed=seed)
    node = build_node(sim, spec)
    return BandwidthBenchmark(sim, node)


@dataclass(frozen=True)
class Fig7Result:
    l3_relative: SeriesBundle        # x = relative frequency, y = relative BW
    dram_relative: SeriesBundle


def run_fig7(seed: int = 61, measure_ns: int = ms(20)) -> Fig7Result:
    l3 = SeriesBundle(title="Fig. 7a: relative L3 read bandwidth",
                      x_label="relative core frequency",
                      y_label="relative bandwidth")
    dram = SeriesBundle(title="Fig. 7b: relative DRAM read bandwidth",
                        x_label="relative core frequency",
                        y_label="relative bandwidth")
    for offset, (arch, spec) in enumerate(_ARCH_NODES.items()):
        bench = _bench_for(spec, seed + offset)
        n_threads = spec.cpu.n_cores
        freqs = list(spec.cpu.pstates_hz)
        base = spec.cpu.nominal_hz
        rel_f = np.array(freqs) / base
        for bundle, level in ((l3, "L3"), (dram, "mem")):
            bw = np.array([
                bench.run(level, n_threads, f, measure_ns=measure_ns).read_gbs
                for f in freqs])
            series = Series(label=arch, x=rel_f, y=bw).normalized_to(1.0)
            bundle.add(series)
    return Fig7Result(l3_relative=l3, dram_relative=dram)


@dataclass(frozen=True)
class Fig8Result:
    l3: SeriesBundle         # one series per frequency; x = threads
    dram: SeriesBundle
    ht_l3: SeriesBundle      # 2 threads/core variants
    ht_dram: SeriesBundle


def run_fig8(
    seed: int = 63,
    freqs_ghz: tuple[float, ...] = (1.2, 1.5, 2.0, 2.5),
    measure_ns: int = ms(20),
) -> Fig8Result:
    spec = HASWELL_TEST_NODE
    bench = _bench_for(spec, seed)
    n_cores = spec.cpu.n_cores
    threads = list(range(1, n_cores + 1))
    ht_threads = list(range(2, 2 * n_cores + 1, 2))

    def sweep(level: str, use_ht: bool, thread_list: list[int],
              f_ghz: float) -> Series:
        bw = [bench.run(level, n, f_ghz * 1e9, use_ht=use_ht,
                        measure_ns=measure_ns).read_gbs
              for n in thread_list]
        return Series(label=f"{f_ghz:.1f} GHz",
                      x=np.array(thread_list, dtype=float),
                      y=np.array(bw))

    bundles = {}
    for key, level, use_ht, tl in (
        ("l3", "L3", False, threads),
        ("dram", "mem", False, threads),
        ("ht_l3", "L3", True, ht_threads),
        ("ht_dram", "mem", True, ht_threads),
    ):
        bundle = SeriesBundle(
            title=f"Fig. 8 ({level}, {'HT' if use_ht else 'no HT'})",
            x_label="threads", y_label="read bandwidth [GB/s]")
        for f in freqs_ghz:
            bundle.add(sweep(level, use_ht, tl, f))
        bundles[key] = bundle
    return Fig8Result(l3=bundles["l3"], dram=bundles["dram"],
                      ht_l3=bundles["ht_l3"], ht_dram=bundles["ht_dram"])


def _render_bundle(bundle: SeriesBundle, fmt: str = "{:.2f}") -> str:
    """One table when all series share an x-grid; one table per series
    otherwise (the per-arch p-state grids of Fig. 7 differ)."""
    first_x = bundle.series[0].x
    if all(len(s.x) == len(first_x) and np.allclose(s.x, first_x)
           for s in bundle.series):
        x_vals = [f"{x:g}" for x in first_x]
        rows = [[s.label] + [fmt.format(v) for v in s.y]
                for s in bundle.series]
        return render_table(headers=[bundle.x_label + " \\"] + x_vals,
                            rows=rows, title=bundle.title)
    blocks = []
    for s in bundle.series:
        x_vals = [f"{x:g}" for x in s.x]
        rows = [[s.label] + [fmt.format(v) for v in s.y]]
        blocks.append(render_table(
            headers=[bundle.x_label + " \\"] + x_vals,
            rows=rows, title=bundle.title))
    return "\n".join(blocks)


def render_fig7(result: Fig7Result) -> str:
    from repro.analysis.plotting import ascii_chart

    return "\n\n".join([
        _render_bundle(result.l3_relative),
        _render_bundle(result.dram_relative),
        ascii_chart(result.l3_relative),
        ascii_chart(result.dram_relative),
    ])


def render_fig8(result: Fig8Result) -> str:
    from repro.analysis.plotting import ascii_chart

    return "\n\n".join([
        _render_bundle(result.l3, "{:.0f}"),
        _render_bundle(result.dram, "{:.1f}"),
        _render_bundle(result.ht_l3, "{:.0f}"),
        _render_bundle(result.ht_dram, "{:.1f}"),
        ascii_chart(result.l3),
        ascii_chart(result.dram),
    ])
