"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's tables/figures to probe the mechanisms the
paper only describes qualitatively:

* **PCU grant quantum sweep** — what would p-state latency look like at
  a 100 us quantum instead of 500 us?
* **EET on/off on a phase-switching workload** — Section II-E's warning
  that sporadic (1 ms) stall polling mis-clocks workloads that flip
  characteristics at an unfavorable rate.
* **DRAM RAPL mode 0 misconfiguration** — the "unreasonably high values"
  Section IV warns about when using the SDM energy unit instead of the
  15.3 uJ unit.
* **PCPS vs chip-wide p-states** — the energy argument for per-core
  p-states that motivates the FIVR design.
* **ACPI-table update** — how much idle residency a governor recovers
  once the tables reflect measured wake latencies (Section VI-B's
  closing argument).
"""

from __future__ import annotations

from dataclasses import dataclass, replace



from repro.cstates.acpi import acpi_table_for
from repro.cstates.governor import MenuGovernor
from repro.cstates.states import CState
from repro.engine.simulator import Simulator
from repro.instruments.ftalat import FtalatProbe, TransitionMode
from repro.pcu.epb import Epb
from repro.power.rapl import RaplDomain, wraparound_delta
from repro.specs.cpu import E5_2680_V3
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, ms, seconds, us
from repro.workloads.composite import square_wave
from repro.workloads.micro import compute, memory_read, while1_spin


# ---- PCU quantum sweep ----------------------------------------------------------


@dataclass(frozen=True)
class QuantumSweepPoint:
    quantum_us: float
    median_latency_us: float
    max_latency_us: float


def run_quantum_sweep(
    quanta_us: tuple[float, ...] = (100.0, 250.0, 500.0, 1000.0),
    seed: int = 81,
    n_samples: int = 200,
) -> list[QuantumSweepPoint]:
    """Random-arrival p-state latency as a function of the grant quantum."""
    points = []
    for quantum in quanta_us:
        cpu = replace(E5_2680_V3, pcu_quantum_ns=us(quantum))
        node_spec = replace(HASWELL_TEST_NODE, cpu=cpu)
        sim = Simulator(seed=seed)
        node = build_node(sim, node_spec)
        probe = FtalatProbe(sim, node)
        res = probe.measure(0, ghz(1.2), ghz(1.3), TransitionMode.RANDOM,
                            n_samples=n_samples)
        points.append(QuantumSweepPoint(
            quantum_us=quantum,
            median_latency_us=res.median_us,
            max_latency_us=res.max_us))
    return points


# ---- EET vs phase-switching workloads ------------------------------------------


@dataclass(frozen=True)
class EetAblationResult:
    period_ns: int
    ips_eet_on: float
    ips_eet_off: float

    @property
    def slowdown(self) -> float:
        """Relative performance lost to EET's stale trim decisions."""
        return 1.0 - self.ips_eet_on / self.ips_eet_off


def run_eet_ablation(
    period_ns: int = ms(1),          # the unfavorable rate: ~the poll period
    seed: int = 83,
    measure_s: float = 5.0,
) -> EetAblationResult:
    spec = HASWELL_TEST_NODE.cpu
    high = compute().phases[0]
    low = memory_read(spec).phases[0]
    workload = square_wave(high, low, period_ns=period_ns, name="flipper")

    ips = {}
    for eet_enabled in (True, False):
        sim = Simulator(seed=seed)
        node = build_node(sim, HASWELL_TEST_NODE, epb=Epb.POWERSAVE,
                          eet_enabled=eet_enabled)
        node.run_workload([0], workload)
        sim.run_for(seconds(1))
        i0 = node.core(0).counters.instructions_thread0
        t0 = sim.now_ns
        sim.run_for(seconds(measure_s))
        ips[eet_enabled] = (node.core(0).counters.instructions_thread0
                            - i0) / ((sim.now_ns - t0) / 1e9)
    return EetAblationResult(period_ns=period_ns,
                             ips_eet_on=ips[True], ips_eet_off=ips[False])


# ---- DRAM RAPL mode 0 misconfiguration -----------------------------------------


@dataclass(frozen=True)
class DramModeResult:
    correct_dram_w: float            # 15.3 uJ unit (mode 1)
    misconfigured_dram_w: float      # generic SDM unit
    overestimate_factor: float


def run_dram_mode_ablation(seed: int = 85,
                           measure_s: float = 2.0) -> DramModeResult:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    spec = node.spec.cpu
    node.run_workload([c.core_id for c in node.sockets[1].cores],
                      memory_read(spec))
    sim.run_for(seconds(1))
    socket = node.sockets[1]
    c0 = socket.rapl.read_counter(RaplDomain.DRAM)
    t0 = sim.now_ns
    sim.run_for(seconds(measure_s))
    delta = wraparound_delta(c0, socket.rapl.read_counter(RaplDomain.DRAM))
    dt_s = (sim.now_ns - t0) / 1e9
    correct = delta * socket.rapl.energy_unit_j(RaplDomain.DRAM) / dt_s
    wrong = delta * spec.rapl_energy_unit_j / dt_s
    return DramModeResult(
        correct_dram_w=correct,
        misconfigured_dram_w=wrong,
        overestimate_factor=wrong / correct if correct > 0 else float("inf"))


# ---- PCPS vs chip-wide p-states ----------------------------------------------------


@dataclass(frozen=True)
class PcpsResult:
    pkg_power_pcps_w: float          # busy core fast, idle-ish cores slow
    pkg_power_chipwide_w: float      # all cores at the busy core's p-state
    savings_w: float


def run_pcps_ablation(seed: int = 87, measure_s: float = 2.0,
                      n_light_cores: int = 8) -> PcpsResult:
    """One latency-critical core at nominal + background cores.

    With per-core p-states the background cores run at the minimum
    p-state; the pre-Haswell alternative forces the whole chip to the
    fastest request.
    """
    powers = {}
    for mode in ("pcps", "chipwide"):
        sim = Simulator(seed=seed)
        node = build_node(sim, HASWELL_TEST_NODE)
        spec = node.spec.cpu
        light_ids = list(range(1, 1 + n_light_cores))
        node.run_workload([0], compute())
        node.run_workload(light_ids, while1_spin())
        node.set_pstate([0], spec.nominal_hz)
        slow = spec.min_hz if mode == "pcps" else spec.nominal_hz
        node.set_pstate(light_ids, slow)
        sim.run_for(seconds(1))
        e0 = node.sockets[0].energy_pkg_j
        t0 = sim.now_ns
        sim.run_for(seconds(measure_s))
        powers[mode] = (node.sockets[0].energy_pkg_j - e0) \
            / ((sim.now_ns - t0) / 1e9)
    return PcpsResult(
        pkg_power_pcps_w=powers["pcps"],
        pkg_power_chipwide_w=powers["chipwide"],
        savings_w=powers["chipwide"] - powers["pcps"])


# ---- ACPI table update --------------------------------------------------------------


@dataclass(frozen=True)
class AcpiUpdateResult:
    shipped_choice: CState           # governor pick for a given idle estimate
    updated_choice: CState
    idle_estimate_us: float


def run_acpi_update_ablation(idle_estimate_us: float = 150.0,
                             measured_c3_us: float = 5.5,
                             measured_c6_us: float = 12.0) -> AcpiUpdateResult:
    """The paper's closing Section VI-B argument, made operational.

    With the shipped table (C6 claims 133 us, so ~400 us residency is
    demanded) a ~150 us idle gets a shallow state; after updating the
    table with measured latencies the governor picks C6.
    """
    table = acpi_table_for(E5_2680_V3)
    shipped = MenuGovernor(table=table).select(idle_estimate_us)
    updated_table = table.updated_from_measurement(
        {CState.C3: measured_c3_us, CState.C6: measured_c6_us})
    updated = MenuGovernor(table=updated_table).select(idle_estimate_us)
    return AcpiUpdateResult(shipped_choice=shipped, updated_choice=updated,
                            idle_estimate_us=idle_estimate_us)
