"""Table IV: FIRESTARTER under different frequency settings (Section V-B).

FIRESTARTER runs with turbo and Hyper-Threading on all cores of both
processors; core/uncore cycles, instructions and RAPL are sampled once
per second on one core per processor via the LIKWID-like sampler, and 50
samples are reduced to medians. Reproduces: TDP capping at and above
2.2 GHz, the headroom exchange between core and uncore below the cap,
the ~1 % IPS win of the 2.3 GHz setting over turbo, and the
processor-0/processor-1 efficiency asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, seconds
from repro.workloads.firestarter import firestarter


@dataclass(frozen=True)
class Table4Column:
    setting_hz: float | None
    core_freq_hz: tuple[float, float]        # per processor
    uncore_freq_hz: tuple[float, float]
    gips: tuple[float, float]
    pkg_power_w: tuple[float, float]

    @property
    def setting_label(self) -> str:
        return "Turbo" if self.setting_hz is None \
            else f"{self.setting_hz / 1e9:.1f}"


@dataclass(frozen=True)
class Table4Result:
    columns: list[Table4Column]

    def column(self, setting_hz: float | None) -> Table4Column:
        for col in self.columns:
            if col.setting_hz is None and setting_hz is None:
                return col
            if (col.setting_hz is not None and setting_hz is not None
                    and abs(col.setting_hz - setting_hz) < 1e6):
                return col
        raise KeyError(setting_hz)


def default_settings() -> list[float | None]:
    return [None, ghz(2.5), ghz(2.4), ghz(2.3), ghz(2.2), ghz(2.1)]


def run_table4(
    seed: int = 31,
    n_samples: int = 50,
    settings: list[float | None] | None = None,
) -> Table4Result:
    from repro.instruments.perfctr import LikwidSampler

    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE, turbo_enabled=True)
    all_ids = [c.core_id for c in node.all_cores]
    node.run_workload(all_ids, firestarter(ht=True))
    monitor_ids = [0, node.spec.cpu.n_cores]
    settings = settings if settings is not None else default_settings()

    columns = []
    for setting in settings:
        node.set_pstate(None, setting)
        sim.run_for(seconds(1))          # reach the thermal/TDP equilibrium
        sampler = LikwidSampler(sim, node, core_ids=monitor_ids,
                                period_ns=seconds(1))
        sampler.start()
        sim.run_for(seconds(n_samples))
        sampler.stop()
        med = [sampler.median_metrics(cid) for cid in monitor_ids]
        columns.append(Table4Column(
            setting_hz=setting,
            core_freq_hz=(med[0]["core_freq_hz"], med[1]["core_freq_hz"]),
            uncore_freq_hz=(med[0]["uncore_freq_hz"], med[1]["uncore_freq_hz"]),
            gips=(med[0]["ips"] / 1e9, med[1]["ips"] / 1e9),
            pkg_power_w=(med[0]["pkg_power_w"], med[1]["pkg_power_w"]),
        ))
    return Table4Result(columns=columns)


def render_table4(result: Table4Result) -> str:
    headers = ["Core frequency setting [GHz]"] + \
        [c.setting_label for c in result.columns]
    rows = []
    for label, getter, fmt in [
        ("Measured core frequency processor 0 [GHz]",
         lambda c: c.core_freq_hz[0] / 1e9, "{:.2f}"),
        ("Measured core frequency processor 1 [GHz]",
         lambda c: c.core_freq_hz[1] / 1e9, "{:.2f}"),
        ("Measured uncore frequency processor 0 [GHz]",
         lambda c: c.uncore_freq_hz[0] / 1e9, "{:.2f}"),
        ("Measured uncore frequency processor 1 [GHz]",
         lambda c: c.uncore_freq_hz[1] / 1e9, "{:.2f}"),
        ("Measured GIPS processor 0", lambda c: c.gips[0], "{:.2f}"),
        ("Measured GIPS processor 1", lambda c: c.gips[1], "{:.2f}"),
        ("RAPL package processor 0 [W]",
         lambda c: c.pkg_power_w[0], "{:.1f}"),
        ("RAPL package processor 1 [W]",
         lambda c: c.pkg_power_w[1], "{:.1f}"),
    ]:
        rows.append([label] + [fmt.format(getter(c)) for c in result.columns])
    return render_table(
        headers=headers, rows=rows,
        title="Table IV: FIRESTARTER performance vs frequency setting "
              "(turbo + HT enabled)")
