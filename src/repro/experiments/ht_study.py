"""Hyper-Threading on/off under FIRESTARTER (Table V's aside).

Table V notes that Hyper-Threading settings (not depicted) "have very
little impact on the core frequency and the power consumption" — while
Section VIII gives the IPC difference (3.1 vs 2.8). This study measures
both claims: node power and equilibrium frequency barely move, but the
per-core instruction rate drops without the second thread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.instruments.perfctr import LikwidSampler
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import seconds
from repro.workloads.firestarter import firestarter


@dataclass(frozen=True)
class HtStudyResult:
    ht: bool
    core_freq_hz: float
    ipc_per_core: float
    pkg_power_w: float
    node_ac_w: float


def run_ht_study(seed: int = 191, measure_s: float = 5.0
                 ) -> tuple[HtStudyResult, HtStudyResult]:
    results = []
    for ht in (True, False):
        sim = Simulator(seed=seed)
        node = build_node(sim, HASWELL_TEST_NODE)
        node.run_workload([c.core_id for c in node.all_cores],
                          firestarter(ht=ht))
        sim.run_for(seconds(1))
        sampler = LikwidSampler(sim, node, core_ids=[12],
                                period_ns=seconds(measure_s / 5))
        sampler.start()
        sim.run_for(seconds(measure_s))
        med = sampler.median_metrics(12)
        threads = 2 if ht else 1
        results.append(HtStudyResult(
            ht=ht,
            core_freq_hz=med["core_freq_hz"],
            ipc_per_core=med["ips"] / med["core_freq_hz"] * threads,
            pkg_power_w=med["pkg_power_w"],
            node_ac_w=node.ac_power_w(),
        ))
    return results[0], results[1]


def render_ht_study(ht_on: HtStudyResult, ht_off: HtStudyResult) -> str:
    lines = [
        "Hyper-Threading study under FIRESTARTER (turbo on):",
        f"  HT on : {ht_on.core_freq_hz / 1e9:.2f} GHz, "
        f"IPC/core {ht_on.ipc_per_core:.2f}, "
        f"pkg {ht_on.pkg_power_w:.0f} W, node {ht_on.node_ac_w:.0f} W",
        f"  HT off: {ht_off.core_freq_hz / 1e9:.2f} GHz, "
        f"IPC/core {ht_off.ipc_per_core:.2f}, "
        f"pkg {ht_off.pkg_power_w:.0f} W, node {ht_off.node_ac_w:.0f} W",
        "  => power pins at the TDP either way; the frequency "
        "compensates (Table IV's 2.31 vs\n     Table V's 2.44 GHz) and "
        "the IPC drops 3.1 -> 2.8 (Section VIII)",
    ]
    return "\n".join(lines)
