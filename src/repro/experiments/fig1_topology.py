"""Fig. 1: the partitioned ring-interconnect die layouts.

Builds every Haswell-EP die variant, checks the structural facts the
figure shows (partition sizes, one IMC with two DRAM channels per
partition, queue pairs bridging the rings), and derives hop statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.topology.builder import DIE_VARIANTS, build_haswell_die
from repro.topology.die import Die
from repro.topology.routing import average_core_l3_hops, average_core_imc_hops


@dataclass(frozen=True)
class DieSummary:
    sku_cores: int
    die_name: str
    n_partitions: int
    partition_core_counts: tuple[int, ...]
    n_imcs: int
    dram_channels: int
    n_queue_pairs: int
    avg_core_l3_hops: float
    avg_core_imc_hops: float
    die: Die


def run_fig1(sku_core_counts: tuple[int, ...] = (8, 12, 18)) -> list[DieSummary]:
    out = []
    for n in sku_core_counts:
        die = build_haswell_die(n)
        out.append(DieSummary(
            sku_cores=n,
            die_name=die.name,
            n_partitions=die.n_partitions,
            partition_core_counts=tuple(len(p.cores) for p in die.partitions),
            n_imcs=die.n_imcs,
            dram_channels=die.dram_channels,
            n_queue_pairs=len(die.queue_pairs),
            avg_core_l3_hops=average_core_l3_hops(die),
            avg_core_imc_hops=average_core_imc_hops(die),
            die=die,
        ))
    return out


def render_fig1(summaries: list[DieSummary] | None = None) -> str:
    summaries = summaries if summaries is not None else run_fig1()
    rows = []
    for s in summaries:
        rows.append([
            f"{s.sku_cores}-core SKU",
            s.die_name,
            "/".join(str(c) for c in s.partition_core_counts),
            str(s.n_imcs),
            str(s.dram_channels),
            str(s.n_queue_pairs),
            f"{s.avg_core_l3_hops:.2f}",
            f"{s.avg_core_imc_hops:.2f}",
        ])
    return render_table(
        headers=["SKU", "die", "cores/partition", "IMCs", "DDR4 ch",
                 "queue pairs", "avg core-L3 hops", "avg core-IMC hops"],
        rows=rows,
        title="Fig. 1: Haswell-EP die layouts (partitioned rings)",
    )


def die_variant_table() -> dict[int, str]:
    """SKU core count -> die name, for all valid SKUs."""
    return {n: DIE_VARIANTS[n][0] for n in sorted(DIE_VARIANTS)}
