"""Table III: uncore frequencies in the no-memory-stalls scenario.

A ``while(1)`` loop runs on one core of processor 0 while both uncore
clocks are measured via UBOXFIX for 10 s per setting, sweeping the core
frequency setting from turbo down to 1.2 GHz. Reproduces the findings
that the uncore follows the fastest active core's *setting* on both the
active and the passive socket, and that EPB = performance pins it at
3.0 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.perfctr import LikwidSampler
from repro.pcu.epb import Epb
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, seconds, ms
from repro.workloads.micro import while1_spin


@dataclass(frozen=True)
class Table3Row:
    setting_hz: float | None         # None = turbo
    active_uncore_hz: float
    passive_uncore_hz: float

    @property
    def setting_label(self) -> str:
        return "Turbo" if self.setting_hz is None \
            else f"{self.setting_hz / 1e9:.1f}"


@dataclass(frozen=True)
class Table3Result:
    epb: Epb
    rows: list[Table3Row]


def default_settings() -> list[float | None]:
    return [None] + [ghz(2.5 - 0.1 * i) for i in range(14)]


def run_table3(
    epb: Epb = Epb.BALANCED,
    seed: int = 21,
    measure_s: float = 10.0,
    settings: list[float | None] | None = None,
) -> Table3Result:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE, epb=epb)
    node.run_workload([0], while1_spin())
    period_ns = min(seconds(1), seconds(measure_s / 5.0))
    sampler = LikwidSampler(sim, node, core_ids=[0, node.spec.cpu.n_cores],
                            period_ns=period_ns)
    settings = settings if settings is not None else default_settings()

    rows = []
    for setting in settings:
        node.set_pstate([0], setting)
        sim.run_for(ms(5))           # cross the next grant opportunity
        sampler.samples = {c: [] for c in sampler.core_ids}
        sampler.start()
        sim.run_for(seconds(measure_s))
        sampler.stop()
        active = sampler.median_metrics(0)["uncore_freq_hz"]
        passive = sampler.median_metrics(node.spec.cpu.n_cores)["uncore_freq_hz"]
        rows.append(Table3Row(setting_hz=setting,
                              active_uncore_hz=active,
                              passive_uncore_hz=passive))
    return Table3Result(epb=epb, rows=rows)


def render_table3(result: Table3Result) -> str:
    headers = ["Core frequency setting [GHz]"] + \
        [r.setting_label for r in result.rows]
    active = ["Active processor uncore frequency [GHz]"] + \
        [f"{r.active_uncore_hz / 1e9:.2f}" for r in result.rows]
    passive = ["Passive processor uncore frequency [GHz]"] + \
        [f"{r.passive_uncore_hz / 1e9:.2f}" for r in result.rows]
    return render_table(
        headers=headers,
        rows=[active, passive],
        title=(f"Table III: uncore frequencies, single-threaded while(1), "
               f"EPB = {result.epb.value}"),
    )
