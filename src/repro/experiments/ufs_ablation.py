"""UFS-coupling ablation: is the uncore clock really the cause?

Fig. 7 compares three *different machines*. This ablation isolates the
mechanism: take the Haswell engine and change **only** the uncore
coupling — independent (UFS, the real Haswell), tied to the core clock
(the Sandy Bridge policy), or fixed (the Westmere policy) — leaving
every other parameter identical. If the paper's explanation is right,
the DRAM-bandwidth-vs-core-frequency shape must follow the coupling, not
the platform.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.instruments.bwbench import BandwidthBenchmark
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, ms


@dataclass(frozen=True)
class CouplingSweepResult:
    coupling: str
    freqs_ghz: tuple[float, ...]
    dram_gbs: tuple[float, ...]

    @property
    def frequency_sensitivity(self) -> float:
        """BW(min f) / BW(max f): 1.0 = frequency-independent."""
        return self.dram_gbs[0] / self.dram_gbs[-1]


def _node_with_coupling(coupling: str, seed: int):
    if coupling not in ("independent", "tied", "fixed"):
        raise ConfigurationError(f"unknown coupling {coupling!r}")
    microarch = replace(HASWELL_TEST_NODE.cpu.microarch,
                        uncore_coupling=coupling)
    # a fixed uncore needs a (narrow) clock band to idle at; pick the
    # midpoint of the UFS range so the comparison is fair
    if coupling == "fixed":
        cpu = replace(HASWELL_TEST_NODE.cpu, microarch=microarch,
                      uncore_min_hz=ghz(2.4), uncore_max_hz=ghz(2.41))
    else:
        cpu = replace(HASWELL_TEST_NODE.cpu, microarch=microarch)
    spec = replace(HASWELL_TEST_NODE, cpu=cpu)
    sim = Simulator(seed=seed)
    return sim, build_node(sim, spec)


def run_ufs_ablation(
    freqs_ghz: tuple[float, ...] = (1.2, 1.5, 2.0, 2.5),
    n_threads: int = 12,
    seed: int = 181,
    measure_ns: int = ms(10),
) -> list[CouplingSweepResult]:
    results = []
    for coupling in ("independent", "tied", "fixed"):
        sim, node = _node_with_coupling(coupling, seed)
        bench = BandwidthBenchmark(sim, node)
        bw = tuple(
            bench.run("mem", n_threads, ghz(f), measure_ns=measure_ns)
            .read_gbs for f in freqs_ghz)
        results.append(CouplingSweepResult(
            coupling=coupling, freqs_ghz=freqs_ghz, dram_gbs=bw))
    return results


def render_ufs_ablation(results: list[CouplingSweepResult]) -> str:
    freqs = results[0].freqs_ghz
    rows = []
    for r in results:
        label = {"independent": "independent (Haswell UFS)",
                 "tied": "tied to core clock (SNB policy)",
                 "fixed": "fixed clock (WSM policy)"}[r.coupling]
        rows.append([label] + [f"{bw:.1f}" for bw in r.dram_gbs]
                    + [f"{r.frequency_sensitivity:.2f}"])
    return render_table(
        headers=["uncore coupling \\ f [GHz]"]
        + [f"{f:g}" for f in freqs] + ["BW(min)/BW(max)"],
        rows=rows,
        title="UFS ablation: saturated DRAM bandwidth vs core frequency, "
              "same engine, coupling swapped")
