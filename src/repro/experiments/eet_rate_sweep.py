"""EET vs workload phase-switching rate (Section II-E, quantified).

"EET may impair performance and energy efficiency of workloads that
change their characteristics at an unfavorable rate" — because the stall
data is polled only sporadically (~1 ms). This experiment sweeps the
phase-switching period of a compute/memory square wave and measures the
slowdown EET's stale trim causes, locating the unfavorable band: phase
periods near the polling period alias worst; much faster phases average
out, much slower phases are tracked correctly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.pcu.epb import Epb
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ms, seconds, us
from repro.workloads.composite import square_wave
from repro.workloads.micro import compute, memory_read


@dataclass(frozen=True)
class EetRatePoint:
    period_ns: int
    ips_eet_on: float
    ips_eet_off: float

    @property
    def slowdown(self) -> float:
        return 1.0 - self.ips_eet_on / self.ips_eet_off


def _flipper(period_ns: int):
    spec = HASWELL_TEST_NODE.cpu
    high = compute().phases[0]
    low = memory_read(spec).phases[0]
    return square_wave(high, low, period_ns=period_ns, name="flipper")


def run_eet_rate_sweep(
    periods_ns: tuple[int, ...] = (us(250), us(500), ms(1), ms(2),
                                   ms(5), ms(20)),
    seed: int = 161,
    measure_s: float = 3.0,
) -> list[EetRatePoint]:
    points = []
    for period in periods_ns:
        ips = {}
        for eet_enabled in (True, False):
            sim = Simulator(seed=seed)
            node = build_node(sim, HASWELL_TEST_NODE, epb=Epb.POWERSAVE,
                              eet_enabled=eet_enabled)
            node.run_workload([0], _flipper(period))
            sim.run_for(seconds(1))
            i0 = node.core(0).counters.instructions_thread0
            t0 = sim.now_ns
            sim.run_for(seconds(measure_s))
            ips[eet_enabled] = (node.core(0).counters.instructions_thread0
                                - i0) / ((sim.now_ns - t0) / 1e9)
        points.append(EetRatePoint(period_ns=period,
                                   ips_eet_on=ips[True],
                                   ips_eet_off=ips[False]))
    return points


def render_eet_rate_sweep(points: list[EetRatePoint]) -> str:
    rows = [[f"{p.period_ns / 1000:.0f}",
             f"{p.ips_eet_on / 1e9:.3f}",
             f"{p.ips_eet_off / 1e9:.3f}",
             f"{p.slowdown * 100:.1f} %"]
            for p in points]
    return render_table(
        headers=["phase period [us]", "GIPS (EET on)", "GIPS (EET off)",
                 "slowdown"],
        rows=rows,
        title="EET vs phase-switching rate (EPB = energy saving, "
              "1 ms stall polling)")
