"""EPB-mapping and turbo-bin characterization (DESIGN.md extensions).

Two measurement-style studies the paper's Section II implies:

* **EPB mapping** — write each of the 16 raw EPB values through the MSR
  interface and observe the behaviour class (the paper: 0 performance,
  1-7 balanced, 8-15 energy saving, measured, against Intel's
  finer-grained documentation).
* **Turbo bins** — occupy 1..n cores with scalar and AVX work and
  measure the granted frequency, recovering the turbo tables of
  Section II-F (non-AVX 3.3..2.9 GHz, AVX 3.1..2.8 GHz on the test SKU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.pcu.epb import Epb, decode_epb
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.msr import MSR, MsrSpace
from repro.system.node import build_node
from repro.units import ghz, ms
from repro.workloads.micro import busy_wait, dgemm
from repro.workloads.mprime import mprime


@dataclass(frozen=True)
class EpbMappingRow:
    raw_value: int
    behaviour: Epb
    observed_freq_hz: float      # mprime at the 2.5 GHz setting (EET-visible)


def run_epb_mapping(seed: int = 131, settle_ns: int = ms(20)
                    ) -> list[EpbMappingRow]:
    """Probe all 16 encodings with an EET-sensitive workload."""
    rows = []
    for raw in range(16):
        sim = Simulator(seed=seed)
        node = build_node(sim, HASWELL_TEST_NODE)
        msr = MsrSpace(node)
        msr.write(0, MSR.IA32_ENERGY_PERF_BIAS, raw)
        node.run_workload([0], mprime())
        node.set_pstate([0], ghz(2.5))
        sim.run_for(settle_ns)
        rows.append(EpbMappingRow(
            raw_value=raw,
            behaviour=decode_epb(raw),
            observed_freq_hz=node.core(0).freq_hz,
        ))
    return rows


def render_epb_mapping(rows: list[EpbMappingRow]) -> str:
    return render_table(
        headers=["EPB raw", "behaviour", "observed frequency [GHz]"],
        rows=[[str(r.raw_value), r.behaviour.value,
               f"{r.observed_freq_hz / 1e9:.2f}"] for r in rows],
        title="EPB mapping exploration (mprime at the 2.5 GHz setting)")


@dataclass(frozen=True)
class TurboBinRow:
    active_cores: int
    scalar_freq_hz: float
    avx_freq_hz: float


def run_turbo_bins(seed: int = 133, settle_ns: int = ms(10)
                   ) -> list[TurboBinRow]:
    """Measure granted frequency vs active core count, scalar vs AVX.

    Uses a generous power budget so the observed caps are the *bins*,
    not the TDP (the TDP interaction is Table IV's subject).
    """
    rows = []
    spec = HASWELL_TEST_NODE.cpu
    for n in range(1, spec.n_cores + 1):
        freqs = {}
        for label, workload in (("scalar", busy_wait()), ("avx", dgemm())):
            sim = Simulator(seed=seed)
            node = build_node(sim, HASWELL_TEST_NODE)
            # lift the TDP so bins are the only cap
            node.pcus[0].limiter.budget_w = 10 * spec.tdp_w
            core_ids = list(range(n))
            node.run_workload(core_ids, workload)
            node.set_pstate(core_ids, None)       # turbo
            sim.run_for(settle_ns)
            freqs[label] = node.core(0).freq_hz
        rows.append(TurboBinRow(active_cores=n,
                                scalar_freq_hz=freqs["scalar"],
                                avx_freq_hz=freqs["avx"]))
    return rows


def render_turbo_bins(rows: list[TurboBinRow]) -> str:
    return render_table(
        headers=["active cores"] + [str(r.active_cores) for r in rows],
        rows=[
            ["non-AVX turbo [GHz]"]
            + [f"{r.scalar_freq_hz / 1e9:.1f}" for r in rows],
            ["AVX turbo [GHz]"]
            + [f"{r.avx_freq_hz / 1e9:.1f}" for r in rows],
        ],
        title="Turbo-bin characterization (TDP lifted)")
