"""Runnable reproductions of every table and figure in the paper.

Each module exposes a ``run_*`` function returning a structured result
plus a ``render_*`` helper that prints the same rows/series the paper
reports. The benchmark harness in ``benchmarks/`` and the examples both
call into these.
"""

from repro.experiments.table1_microarch import run_table1, render_table1
from repro.experiments.fig1_topology import run_fig1, render_fig1
from repro.experiments.table2_system import run_table2, render_table2
from repro.experiments.fig2_rapl_accuracy import run_fig2, render_fig2
from repro.experiments.table3_uncore import run_table3, render_table3
from repro.experiments.table4_firestarter import run_table4, render_table4
from repro.experiments.fig3_pstate_latency import run_fig3, render_fig3
from repro.experiments.fig5_fig6_cstate_latency import (
    run_cstate_figure,
    render_cstate_figure,
)
from repro.experiments.fig7_fig8_bandwidth import (
    run_fig7,
    run_fig8,
    render_fig7,
    render_fig8,
)
from repro.experiments.table5_max_power import run_table5, render_table5
from repro.experiments.fig4_mechanism import estimate_mechanism, render_fig4
from repro.experiments.powercap import run_powercap_sweep, render_powercap
from repro.experiments.ufs_ablation import run_ufs_ablation, render_ufs_ablation
from repro.experiments.eet_rate_sweep import (
    run_eet_rate_sweep,
    render_eet_rate_sweep,
)
from repro.experiments.epb_turbo_characterization import (
    run_epb_mapping,
    render_epb_mapping,
    run_turbo_bins,
    render_turbo_bins,
)
from repro.experiments.avx_transient import (
    run_avx_transient,
    render_avx_transient,
)
from repro.experiments.ht_study import run_ht_study, render_ht_study
from repro.experiments.hostif_parity import (
    run_hostif_parity,
    render_hostif_parity,
)
from repro.experiments.runner import (
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    SuiteReport,
)

__all__ = [
    "ExperimentOutcome", "ExperimentRunner", "ExperimentSpec", "SuiteReport",
    "run_table1", "render_table1",
    "run_fig1", "render_fig1",
    "run_table2", "render_table2",
    "run_fig2", "render_fig2",
    "run_table3", "render_table3",
    "run_table4", "render_table4",
    "run_fig3", "render_fig3",
    "run_cstate_figure", "render_cstate_figure",
    "run_fig7", "run_fig8", "render_fig7", "render_fig8",
    "run_table5", "render_table5",
    "estimate_mechanism", "render_fig4",
    "run_powercap_sweep", "render_powercap",
    "run_ufs_ablation", "render_ufs_ablation",
    "run_eet_rate_sweep", "render_eet_rate_sweep",
    "run_epb_mapping", "render_epb_mapping",
    "run_turbo_bins", "render_turbo_bins",
    "run_avx_transient", "render_avx_transient",
    "run_ht_study", "render_ht_study",
    "run_hostif_parity", "render_hostif_parity",
]
