"""AVX frequency-transition transient (Section II-F, measured).

The paper lists the workflow: AVX execution is throttled until the PCU
grants the voltage bump; the clock drops to the AVX caps; 1 ms after the
last AVX instruction the core returns to non-AVX operating mode. This
experiment drives a scalar -> AVX -> scalar phase sequence on one core
and records the transient with the frequency tracer: the throttled
request window, the licensed interval, the relax delay, and the
frequency steps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.simulator import Simulator
from repro.instruments.freqtrace import FreqTrace
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.core import AvxLicense
from repro.system.node import build_node
from repro.units import ms, us
from repro.workloads.base import Workload, WorkloadPhase


@dataclass(frozen=True)
class AvxTransientResult:
    request_window_ns: int          # throttled time at AVX entry
    licensed_ns: int                # time under AVX caps
    relax_delay_ns: int             # AVX end -> return to NORMAL
    scalar_freq_hz: float
    avx_freq_hz: float


def _scalar_avx_scalar(avx_ms: float) -> Workload:
    scalar = WorkloadPhase(name="scalar", duration_ns=ms(3),
                           power_activity=0.4, ipc_parity=1.8)
    avx = WorkloadPhase(name="avx_burst", duration_ns=ms(avx_ms),
                        power_activity=0.85, ipc_parity=1.4,
                        avx_fraction=0.9)
    tail = WorkloadPhase(name="scalar_tail", duration_ns=None,
                         power_activity=0.4, ipc_parity=1.8)
    return Workload(name="scalar_avx_scalar", phases=(scalar, avx, tail),
                    cyclic=False)


def run_avx_transient(avx_ms: float = 3.0, seed: int = 171
                      ) -> AvxTransientResult:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    trace = FreqTrace(sim, node, core_ids=[0], period_ns=us(10))
    node.run_workload([0], _scalar_avx_scalar(avx_ms))
    trace.start()
    sim.run_for(ms(3 + avx_ms + 4))       # scalar + avx + relax + margin
    trace.stop()

    requesting = trace.license_intervals(0, AvxLicense.REQUESTING)
    licensed = trace.license_intervals(0, AvxLicense.LICENSED)
    relaxing = trace.license_intervals(0, AvxLicense.RELAXING)

    request_window = sum(e - s for s, e in requesting)
    licensed_total = sum(e - s for s, e in licensed)
    relax_total = sum(e - s for s, e in relaxing)

    t, f = trace.series(0)
    scalar_mask = t < ms(2)
    avx_mask = (t > ms(4)) & (t < ms(3 + avx_ms) - ms(0.5))
    scalar_freq = float(f[scalar_mask].max()) if scalar_mask.any() else 0.0
    avx_freq = float(f[avx_mask].min()) if avx_mask.any() else 0.0
    return AvxTransientResult(
        request_window_ns=request_window,
        licensed_ns=licensed_total,
        relax_delay_ns=relax_total,
        scalar_freq_hz=scalar_freq,
        avx_freq_hz=avx_freq,
    )


def render_avx_transient(result: AvxTransientResult) -> str:
    lines = [
        "AVX frequency-transition transient (Section II-F workflow)",
        f"  1. voltage-request window (throttled execution): "
        f"{result.request_window_ns / 1000:6.0f} us",
        f"  2. licensed interval at AVX caps:                "
        f"{result.licensed_ns / 1e6:6.2f} ms",
        f"  3. relax delay back to non-AVX mode:             "
        f"{result.relax_delay_ns / 1e6:6.2f} ms (spec: 1 ms)",
        f"  scalar-mode frequency: {result.scalar_freq_hz / 1e9:.2f} GHz "
        "(non-AVX turbo bin)",
        f"  AVX-mode frequency:    {result.avx_freq_hz / 1e9:.2f} GHz "
        "(AVX turbo bin)",
    ]
    return "\n".join(lines)
