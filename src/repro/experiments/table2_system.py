"""Table II: the test-system configuration, including the idle-power check.

Boots the simulated bullx node with everything idle (fans at maximum,
as in the paper) and verifies the measured idle AC power against the
261.5 W the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.lmg450 import Lmg450, ACCURACY_RELATIVE, ACCURACY_ABSOLUTE_W
from repro.specs.node import HASWELL_TEST_NODE, NodeSpec
from repro.system.node import build_node
from repro.units import seconds

PAPER_IDLE_POWER_W = 261.5


@dataclass(frozen=True)
class Table2Result:
    spec: NodeSpec
    idle_power_w: float
    rows: list[tuple[str, str]]


def run_table2(seed: int = 0, settle_s: float = 1.0,
               measure_s: float = 4.0) -> Table2Result:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    meter = Lmg450(sim, node)
    sim.run_for(seconds(settle_s))
    meter.start()
    t0 = sim.now_ns
    sim.run_for(seconds(measure_s))
    idle_w = meter.average(t0, sim.now_ns)

    cpu = node.spec.cpu
    rows = [
        ("Processor", f"{node.spec.n_sockets}x {cpu.model}"),
        ("Frequency range (selectable p-states)",
         f"{cpu.min_hz / 1e9:.1f} - {cpu.nominal_hz / 1e9:.1f} GHz"),
        ("Turbo frequency", f"up to {cpu.turbo.max_hz / 1e9:.1f} GHz"),
        ("AVX base frequency", f"{cpu.avx_base_hz / 1e9:.1f} GHz"),
        ("Energy perf. bias", "balanced"),
        ("Energy-efficient turbo (EET)", "enabled"),
        ("Uncore frequency scaling (UFS)", "enabled"),
        ("Per-core p-states (PCPS)", "enabled"),
        ("Idle power (fan speed set to maximum)", f"{idle_w:.1f} Watt"),
        ("Power meter", "ZES LMG 450 (simulated)"),
        ("Accuracy",
         f"{ACCURACY_RELATIVE * 100:.2f} % + {ACCURACY_ABSOLUTE_W:.2f} W"),
    ]
    return Table2Result(spec=node.spec, idle_power_w=idle_w, rows=rows)


def render_table2(result: Table2Result | None = None) -> str:
    result = result if result is not None else run_table2()
    return render_table(
        headers=["Item", "Value"],
        rows=[[k, v] for k, v in result.rows],
        title="Table II: test system details",
    )
