"""Compatibility shim: the resilient runner moved to
:mod:`repro.faults.runner` (the conformance layer drives it, and a
harness-layer module cannot import the app layer — see the
``arch-layering`` rule and docs/static_analysis.md)."""

from repro.faults.runner import (  # noqa: F401
    ExperimentOutcome,
    ExperimentRunner,
    ExperimentSpec,
    SuiteReport,
)

__all__ = [
    "ExperimentOutcome",
    "ExperimentRunner",
    "ExperimentSpec",
    "SuiteReport",
]
