"""Fig. 2: RAPL (package + DRAM) vs. LMG450 AC reference power.

Runs the paper's micro-benchmark set (idle, sinus, busy wait, memory,
compute, dgemm, sqrt) in several threading configurations on a simulated
node, averaging 4 s of constant load per point, and compares software
RAPL readings (counter deltas x energy unit, with 32-bit wrap handling)
against the AC meter:

* **Haswell-EP** (measured RAPL): all workloads collapse onto a single
  quadratic AC = f(RAPL) — the paper's footnote-2 fit with R² > 0.9998;
* **Sandy Bridge-EP** (modeled RAPL): per-workload bias fans the points
  out around the linear fit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.fitting import FitResult, linear_fit, quadratic_fit
from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.errors import ConfigurationError
from repro.instruments.lmg450 import Lmg450
from repro.power.rapl import RaplDomain, wraparound_delta
from repro.specs.node import (
    HASWELL_TEST_NODE,
    SANDY_BRIDGE_TEST_NODE,
    NodeSpec,
)
from repro.system.node import Node, build_node
from repro.units import seconds
from repro.workloads.base import Workload
from repro.workloads.micro import (
    busy_wait,
    compute,
    dgemm,
    idle,
    memory_read,
    sinus,
    sqrt_bench,
)


@dataclass(frozen=True)
class Fig2Point:
    workload: str
    n_threads: int
    rapl_w: float            # package + DRAM, both sockets, via MSR reads
    ac_w: float              # LMG450 average


@dataclass(frozen=True)
class Fig2Result:
    arch: str
    points: list[Fig2Point]
    fit: FitResult
    fit_kind: str            # "quadratic" | "linear"

    def residuals_by_workload(self) -> dict[str, float]:
        """Max |AC - fit(RAPL)| per workload — the bias signature."""
        out: dict[str, float] = {}
        for p in self.points:
            resid = abs(p.ac_w - float(self.fit.predict(p.rapl_w)))
            out[p.workload] = max(out.get(p.workload, 0.0), resid)
        return out


def _workload_set(node: Node, measure_s: float) -> list[tuple[str, Workload]]:
    spec = node.spec.cpu
    # The sinus period must divide the averaging window, otherwise the
    # 20 Sa/s meter mean and the RAPL mean see different partial periods.
    sinus_period_ns = seconds(measure_s / 4.0)
    return [
        ("idle", idle()),
        ("sinus", sinus(period_ns=sinus_period_ns)),
        ("busy wait", busy_wait()),
        ("memory", memory_read(spec)),
        ("compute", compute()),
        ("dgemm", dgemm()),
        ("sqrt", sqrt_bench()),
    ]


def _read_rapl_w(node: Node, before: list[dict], dt_s: float) -> float:
    """Software-style RAPL power: counter deltas x units / time."""
    total = 0.0
    for socket, snap in zip(node.sockets, before):
        for domain in (RaplDomain.PACKAGE, RaplDomain.DRAM):
            delta = wraparound_delta(snap[domain],
                                     socket.rapl.read_counter(domain))
            total += delta * socket.rapl.energy_unit_j(domain) / dt_s
    return total


def _snapshot_counters(node: Node) -> list[dict]:
    return [
        {domain: s.rapl.read_counter(domain)
         for domain in (RaplDomain.PACKAGE, RaplDomain.DRAM)}
        for s in node.sockets
    ]


def run_fig2(
    arch: str = "haswell",
    seed: int = 11,
    measure_s: float = 4.0,
    settle_s: float = 0.5,
    thread_counts: tuple[int, ...] | None = None,
) -> Fig2Result:
    if arch == "haswell":
        spec: NodeSpec = HASWELL_TEST_NODE
    elif arch == "sandybridge":
        spec = SANDY_BRIDGE_TEST_NODE
    else:
        raise ConfigurationError(f"unknown arch {arch!r}")

    sim = Simulator(seed=seed)
    node = build_node(sim, spec)
    meter = Lmg450(sim, node)
    meter.start()
    all_ids = [c.core_id for c in node.all_cores]
    if thread_counts is None:
        n = spec.cpu.n_cores
        thread_counts = (1, n // 2, n, 2 * n)   # up to both sockets full

    points: list[Fig2Point] = []
    for name, workload in _workload_set(node, measure_s):
        counts = (0,) if name == "idle" else thread_counts
        for n_threads in counts:
            node.stop_workload(all_ids)
            if n_threads > 0:
                node.run_workload(all_ids[:n_threads], workload)
            sim.run_for(seconds(settle_s))
            snap = _snapshot_counters(node)
            t0 = sim.now_ns
            sim.run_for(seconds(measure_s))
            rapl_w = _read_rapl_w(node, snap, measure_s)
            ac_w = meter.average(t0, sim.now_ns)
            points.append(Fig2Point(name, n_threads, rapl_w, ac_w))
    node.stop_workload(all_ids)

    rapl = np.array([p.rapl_w for p in points])
    ac = np.array([p.ac_w for p in points])
    if arch == "haswell":
        fit = quadratic_fit(rapl, ac)
        kind = "quadratic"
    else:
        fit = linear_fit(rapl, ac)
        kind = "linear"
    return Fig2Result(arch=arch, points=points, fit=fit, fit_kind=kind)


def render_fig2(result: Fig2Result) -> str:
    rows = [[p.workload, str(p.n_threads), f"{p.rapl_w:.1f}", f"{p.ac_w:.1f}",
             f"{p.ac_w - float(result.fit.predict(p.rapl_w)):+.2f}"]
            for p in result.points]
    c = result.fit.coeffs
    fit_text = " + ".join(f"{coef:.4g}*P^{i}" for i, coef in enumerate(c))
    return render_table(
        headers=["workload", "threads", "RAPL pkg+DRAM (W)", "LMG450 AC (W)",
                 "residual (W)"],
        rows=rows,
        title=(f"Fig. 2 ({result.arch}): AC = {fit_text}, "
               f"{result.fit_kind} fit, R^2 = {result.fit.r_squared:.5f}"),
    )
