"""Governor-in-the-loop parity: host interface vs direct API.

The host interface claims *write-through equivalence*: configuring the
node through the virtual sysfs tree and MSR registers performs exactly
the state mutations the internal Python API performs. This experiment
proves it the strong way — two simulations with the same seed, one
configured purely through hostif files/registers and one through the
direct calls, must produce **bit-identical** state reports (full float
``repr``, raw counter integers) after running a workload under an
active cpufreq governor. The comparison is repeated with the
steady-state fast path on and off, tying the hostif contract into the
fastpath parity guarantee of ``docs/performance.md``.

The configuration deliberately crosses every hostif surface: userspace
governor + setspeed (cpufreq sysfs), EPB (sysfs), turbo off
(IA32_MISC_ENABLE), a narrowed uncore window (MSR 0x620), and C6
disabled on the idle cores (cpuidle sysfs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

# The configuration/rendering helpers live in the conformance layer
# (repro.conformance.hostconfig) because the scenario machinery and the
# dataset CLI share them; the old underscore names stay re-exported.
from repro.conformance.hostconfig import (
    ACTIVE_CPUS as _ACTIVE_CPUS,
    C6_DISABLED_CPUS as _C6_DISABLED_CPUS,
    CONFIGURE as _CONFIGURE,
    PIN_GHZ as _PIN_GHZ,
    UNCORE_MAX_GHZ as _UNCORE_MAX_GHZ,
    UNCORE_MIN_GHZ as _UNCORE_MIN_GHZ,
    render_state as _render_state,
)
from repro.hostif import VirtualHost
from repro.system.node import build_haswell_node
from repro.units import ms
from repro.workloads.firestarter import firestarter


def _run_variant(variant: str, fastpath: bool, seed: int,
                 measure_ns: int) -> tuple[str, str | None, int]:
    sim, node = build_haswell_node(seed=seed)
    node.set_fastpath(fastpath)
    host = VirtualHost(sim, node).start()
    _CONFIGURE[variant](host)
    node.run_workload(list(_ACTIVE_CPUS), firestarter())
    sim.run_for(measure_ns)
    ledger = sim.ledger.render() if sim.ledger is not None else None
    checks = sum(s.sanitize_checks for s in node.sockets)
    return _render_state(host), ledger, checks


@dataclass(frozen=True)
class HostifParityResult:
    seed: int
    measure_ns: int
    # (variant, fastpath) -> rendered state
    reports: dict[tuple[str, bool], str]
    # (variant, fastpath) -> rendered RNG draw ledger; None unless the
    # runs executed under sanitize mode (REPRO_SANITIZE=1)
    ledgers: dict[tuple[str, bool], str | None] = field(default_factory=dict)
    # (variant, fastpath) -> epoch-consistency recomputes performed
    sanitize_checks: dict[tuple[str, bool], int] = field(default_factory=dict)

    def report(self, variant: str, fastpath: bool) -> str:
        return self.reports[(variant, fastpath)]

    @property
    def parity(self) -> dict[bool, bool]:
        """fastpath -> hostif report identical to direct report."""
        return {fp: self.reports[("direct", fp)] == self.reports[("hostif", fp)]
                for fp in (True, False)}

    @property
    def all_identical(self) -> bool:
        """Both variants and both fastpath settings agree bit-for-bit."""
        return len(set(self.reports.values())) == 1

    @property
    def sanitized(self) -> bool:
        """Did the runs carry RNG draw ledgers (sanitize mode on)?"""
        return bool(self.ledgers) and None not in self.ledgers.values()

    @property
    def ledgers_identical(self) -> bool:
        """All four runs drew from the same sites in the same order."""
        return self.sanitized and len(set(self.ledgers.values())) == 1

    @property
    def total_sanitize_checks(self) -> int:
        return sum(self.sanitize_checks.values())


def run_hostif_parity(seed: int = 271,
                      measure_ns: int = ms(20)) -> HostifParityResult:
    reports: dict[tuple[str, bool], str] = {}
    ledgers: dict[tuple[str, bool], str | None] = {}
    checks: dict[tuple[str, bool], int] = {}
    for fastpath in (True, False):
        for variant in ("direct", "hostif"):
            state, ledger, n_checks = _run_variant(
                variant, fastpath, seed, measure_ns)
            reports[(variant, fastpath)] = state
            ledgers[(variant, fastpath)] = ledger
            checks[(variant, fastpath)] = n_checks
    return HostifParityResult(seed=seed, measure_ns=measure_ns,
                              reports=reports, ledgers=ledgers,
                              sanitize_checks=checks)


def render_hostif_parity(result: HostifParityResult) -> str:
    lines = [
        "Host-interface parity: sysfs/MSR configuration vs direct API",
        f"(seed {result.seed}, {result.measure_ns / 1e6:.0f} ms simulated, "
        f"userspace governor @ {_PIN_GHZ} GHz, EPB=0, turbo off, "
        f"uncore [{_UNCORE_MIN_GHZ}, {_UNCORE_MAX_GHZ}] GHz, "
        "C6 disabled on idle cores)",
        "",
    ]
    for fastpath, same in result.parity.items():
        label = "on" if fastpath else "off"
        verdict = "bit-identical" if same else "DIVERGED"
        lines.append(f"fastpath {label}: hostif vs direct -> {verdict}")
    lines.append("fastpath on vs off (direct): "
                 + ("bit-identical" if result.report("direct", True)
                    == result.report("direct", False) else "DIVERGED"))
    if result.sanitized:
        verdict = ("identical" if result.ledgers_identical
                   else "DIVERGED")
        draws = result.ledgers[("direct", True)]
        n_draws = len(draws.splitlines()) if draws else 0
        lines.append(
            f"sanitize: RNG draw ledgers across all 4 runs -> {verdict} "
            f"({n_draws} ledger entries, "
            f"{result.total_sanitize_checks} epoch-consistency checks)")
    lines.append("")
    lines.append("state (hostif, fastpath on):")
    lines.extend("  " + ln for ln in
                 result.report("hostif", True).splitlines())
    if not result.all_identical:
        for (variant, fastpath), text in sorted(result.reports.items()):
            lines.append("")
            lines.append(f"-- {variant}, fastpath {'on' if fastpath else 'off'}")
            lines.extend("  " + ln for ln in text.splitlines())
    if result.sanitized and not result.ledgers_identical:
        for (variant, fastpath), text in sorted(result.ledgers.items()):
            lines.append("")
            lines.append(f"-- ledger: {variant}, "
                         f"fastpath {'on' if fastpath else 'off'}")
            lines.extend("  " + ln for ln in (text or "").splitlines())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``make sanitize-smoke`` entry: parity run under sanitize mode.

    Forces sanitize mode on (no need to export ``REPRO_SANITIZE``),
    runs the four-way parity experiment, and fails unless the state
    reports are bit-identical, the RNG draw ledgers agree across all
    four runs, the epoch-consistency checker actually ran, and no
    :class:`~repro.errors.EpochConsistencyError` was raised (one would
    propagate out of ``run_hostif_parity``).
    """
    import argparse

    from repro.engine import sanitize

    parser = argparse.ArgumentParser(
        description="hostif/fastpath parity under the runtime sanitizer")
    parser.add_argument("--measure-ms", type=int, default=20,
                        help="simulated time per run (default 20 ms)")
    args = parser.parse_args(argv)

    sanitize.set_enabled(True)
    try:
        result = run_hostif_parity(measure_ns=ms(args.measure_ms))
    finally:
        sanitize.set_enabled(None)
    print(render_hostif_parity(result))
    failures = []
    if not result.all_identical:
        failures.append("state reports diverged")
    if not result.sanitized:
        failures.append("runs carried no RNG draw ledger")
    elif not result.ledgers_identical:
        failures.append("RNG draw ledgers diverged")
    if result.total_sanitize_checks == 0:
        failures.append("epoch-consistency checker never ran")
    if failures:
        print("SANITIZE FAIL: " + "; ".join(failures))
        return 1
    print("SANITIZE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
