"""Governor-in-the-loop parity: host interface vs direct API.

The host interface claims *write-through equivalence*: configuring the
node through the virtual sysfs tree and MSR registers performs exactly
the state mutations the internal Python API performs. This experiment
proves it the strong way — two simulations with the same seed, one
configured purely through hostif files/registers and one through the
direct calls, must produce **bit-identical** state reports (full float
``repr``, raw counter integers) after running a workload under an
active cpufreq governor. The comparison is repeated with the
steady-state fast path on and off, tying the hostif contract into the
fastpath parity guarantee of ``docs/performance.md``.

The configuration deliberately crosses every hostif surface: userspace
governor + setspeed (cpufreq sysfs), EPB (sysfs), turbo off
(IA32_MISC_ENABLE), a narrowed uncore window (MSR 0x620), and C6
disabled on the idle cores (cpuidle sysfs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cpufreq.policy import Governor
from repro.cstates.states import CState
from repro.hostif import HostMsr, VirtualHost
from repro.hostif.msr_regs import (
    encode_misc_enable,
    encode_uncore_ratio_limit,
)
from repro.pcu.epb import Epb
from repro.power.rapl import RaplDomain
from repro.system.node import build_haswell_node
from repro.units import ghz, ms
from repro.workloads.firestarter import firestarter

_SYS = "/sys/devices/system/cpu"

#: The scenario: FIRESTARTER on socket 0's first six cores, pinned to
#: 1.8 GHz via the userspace governor; C6 disabled on the next six
#: (idle) cores; EPB performance; turbo off; uncore window narrowed so
#: the 0x620 clamp is visible in the granted uncore frequency.
_ACTIVE_CPUS = (0, 1, 2, 3, 4, 5)
_C6_DISABLED_CPUS = (6, 7, 8, 9, 10, 11)
_PIN_GHZ = 1.8
_UNCORE_MIN_GHZ = 1.3
_UNCORE_MAX_GHZ = 1.5


def _configure_direct(host: VirtualHost) -> None:
    """The internal-API path."""
    node = host.node
    host.cpufreq.set_governor(Governor.USERSPACE)
    for cpu in _ACTIVE_CPUS:
        # The same two calls sysfs setspeed performs, in the same order.
        host.cpufreq.policy(cpu).set_speed(ghz(_PIN_GHZ))
        node.set_pstate([cpu], ghz(_PIN_GHZ))
    node.set_epb(Epb.PERFORMANCE)
    node.set_turbo(False)
    node.set_uncore_limits(ghz(_UNCORE_MIN_GHZ), ghz(_UNCORE_MAX_GHZ))
    for cpu in _C6_DISABLED_CPUS:
        node.core(cpu).set_cstate_disabled(CState.C6, True)


def _configure_hostif(host: VirtualHost) -> None:
    """The same configuration, purely through sysfs files and MSRs."""
    for cpu in host.cpu_ids:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpufreq/scaling_governor",
                         "userspace")
    for cpu in _ACTIVE_CPUS:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpufreq/scaling_setspeed",
                         str(int(_PIN_GHZ * 1e6)))
    # Package-scoped registers: one write per socket (cpu 0 and the
    # first cpu of socket 1).
    per_socket = [s.cores[0].core_id for s in host.node.sockets]
    for cpu in per_socket:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/power/energy_perf_bias", "0")
        host.msr.write(cpu, HostMsr.IA32_MISC_ENABLE,
                       encode_misc_enable(turbo_enabled=False))
        host.msr.write(cpu, HostMsr.MSR_UNCORE_RATIO_LIMIT,
                       encode_uncore_ratio_limit(ghz(_UNCORE_MIN_GHZ),
                                                 ghz(_UNCORE_MAX_GHZ)))
    for cpu in _C6_DISABLED_CPUS:
        host.sysfs.write(f"{_SYS}/cpu{cpu}/cpuidle/state2/disable", "1")


_CONFIGURE = {"direct": _configure_direct, "hostif": _configure_hostif}


def _render_state(host: VirtualHost) -> str:
    """Full-precision state dump — any divergence shows as a text diff."""
    node = host.node
    lines = [f"t_ns={node.sim.now_ns}"]
    for cpu in (*_ACTIVE_CPUS, *_C6_DISABLED_CPUS):
        core = node.core(cpu)
        lines.append(
            f"cpu{cpu} freq={core.freq_hz!r} req={core.requested_hz!r} "
            f"cstate={core.cstate.name} aperf={core.counters.aperf!r} "
            f"mperf={core.counters.mperf!r}")
    for socket in node.sockets:
        first = socket.cores[0].core_id
        pkg = host.msr.read(first, HostMsr.MSR_PKG_ENERGY_STATUS)
        dram = host.msr.read(first, HostMsr.MSR_DRAM_ENERGY_STATUS)
        ratio_limit = host.msr.read(first, HostMsr.MSR_UNCORE_RATIO_LIMIT)
        lines.append(
            f"socket{socket.socket_id} uncore={socket.uncore.freq_hz!r} "
            f"pkg_counter={pkg} dram_counter={dram} "
            f"uncore_ratio_limit={ratio_limit:#x}")
    lines.append(f"ac_energy_j={node.ac_energy_j!r}")
    return "\n".join(lines)


def _run_variant(variant: str, fastpath: bool, seed: int,
                 measure_ns: int) -> tuple[str, str | None, int]:
    sim, node = build_haswell_node(seed=seed)
    node.set_fastpath(fastpath)
    host = VirtualHost(sim, node).start()
    _CONFIGURE[variant](host)
    node.run_workload(list(_ACTIVE_CPUS), firestarter())
    sim.run_for(measure_ns)
    ledger = sim.ledger.render() if sim.ledger is not None else None
    checks = sum(s.sanitize_checks for s in node.sockets)
    return _render_state(host), ledger, checks


@dataclass(frozen=True)
class HostifParityResult:
    seed: int
    measure_ns: int
    # (variant, fastpath) -> rendered state
    reports: dict[tuple[str, bool], str]
    # (variant, fastpath) -> rendered RNG draw ledger; None unless the
    # runs executed under sanitize mode (REPRO_SANITIZE=1)
    ledgers: dict[tuple[str, bool], str | None] = field(default_factory=dict)
    # (variant, fastpath) -> epoch-consistency recomputes performed
    sanitize_checks: dict[tuple[str, bool], int] = field(default_factory=dict)

    def report(self, variant: str, fastpath: bool) -> str:
        return self.reports[(variant, fastpath)]

    @property
    def parity(self) -> dict[bool, bool]:
        """fastpath -> hostif report identical to direct report."""
        return {fp: self.reports[("direct", fp)] == self.reports[("hostif", fp)]
                for fp in (True, False)}

    @property
    def all_identical(self) -> bool:
        """Both variants and both fastpath settings agree bit-for-bit."""
        return len(set(self.reports.values())) == 1

    @property
    def sanitized(self) -> bool:
        """Did the runs carry RNG draw ledgers (sanitize mode on)?"""
        return bool(self.ledgers) and None not in self.ledgers.values()

    @property
    def ledgers_identical(self) -> bool:
        """All four runs drew from the same sites in the same order."""
        return self.sanitized and len(set(self.ledgers.values())) == 1

    @property
    def total_sanitize_checks(self) -> int:
        return sum(self.sanitize_checks.values())


def run_hostif_parity(seed: int = 271,
                      measure_ns: int = ms(20)) -> HostifParityResult:
    reports: dict[tuple[str, bool], str] = {}
    ledgers: dict[tuple[str, bool], str | None] = {}
    checks: dict[tuple[str, bool], int] = {}
    for fastpath in (True, False):
        for variant in ("direct", "hostif"):
            state, ledger, n_checks = _run_variant(
                variant, fastpath, seed, measure_ns)
            reports[(variant, fastpath)] = state
            ledgers[(variant, fastpath)] = ledger
            checks[(variant, fastpath)] = n_checks
    return HostifParityResult(seed=seed, measure_ns=measure_ns,
                              reports=reports, ledgers=ledgers,
                              sanitize_checks=checks)


def render_hostif_parity(result: HostifParityResult) -> str:
    lines = [
        "Host-interface parity: sysfs/MSR configuration vs direct API",
        f"(seed {result.seed}, {result.measure_ns / 1e6:.0f} ms simulated, "
        f"userspace governor @ {_PIN_GHZ} GHz, EPB=0, turbo off, "
        f"uncore [{_UNCORE_MIN_GHZ}, {_UNCORE_MAX_GHZ}] GHz, "
        "C6 disabled on idle cores)",
        "",
    ]
    for fastpath, same in result.parity.items():
        label = "on" if fastpath else "off"
        verdict = "bit-identical" if same else "DIVERGED"
        lines.append(f"fastpath {label}: hostif vs direct -> {verdict}")
    lines.append("fastpath on vs off (direct): "
                 + ("bit-identical" if result.report("direct", True)
                    == result.report("direct", False) else "DIVERGED"))
    if result.sanitized:
        verdict = ("identical" if result.ledgers_identical
                   else "DIVERGED")
        draws = result.ledgers[("direct", True)]
        n_draws = len(draws.splitlines()) if draws else 0
        lines.append(
            f"sanitize: RNG draw ledgers across all 4 runs -> {verdict} "
            f"({n_draws} ledger entries, "
            f"{result.total_sanitize_checks} epoch-consistency checks)")
    lines.append("")
    lines.append("state (hostif, fastpath on):")
    lines.extend("  " + ln for ln in
                 result.report("hostif", True).splitlines())
    if not result.all_identical:
        for (variant, fastpath), text in sorted(result.reports.items()):
            lines.append("")
            lines.append(f"-- {variant}, fastpath {'on' if fastpath else 'off'}")
            lines.extend("  " + ln for ln in text.splitlines())
    if result.sanitized and not result.ledgers_identical:
        for (variant, fastpath), text in sorted(result.ledgers.items()):
            lines.append("")
            lines.append(f"-- ledger: {variant}, "
                         f"fastpath {'on' if fastpath else 'off'}")
            lines.extend("  " + ln for ln in (text or "").splitlines())
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``make sanitize-smoke`` entry: parity run under sanitize mode.

    Forces sanitize mode on (no need to export ``REPRO_SANITIZE``),
    runs the four-way parity experiment, and fails unless the state
    reports are bit-identical, the RNG draw ledgers agree across all
    four runs, the epoch-consistency checker actually ran, and no
    :class:`~repro.errors.EpochConsistencyError` was raised (one would
    propagate out of ``run_hostif_parity``).
    """
    import argparse

    from repro.engine import sanitize

    parser = argparse.ArgumentParser(
        description="hostif/fastpath parity under the runtime sanitizer")
    parser.add_argument("--measure-ms", type=int, default=20,
                        help="simulated time per run (default 20 ms)")
    args = parser.parse_args(argv)

    sanitize.set_enabled(True)
    try:
        result = run_hostif_parity(measure_ns=ms(args.measure_ms))
    finally:
        sanitize.set_enabled(None)
    print(render_hostif_parity(result))
    failures = []
    if not result.all_identical:
        failures.append("state reports diverged")
    if not result.sanitized:
        failures.append("runs carried no RNG draw ledger")
    elif not result.ledgers_identical:
        failures.append("RNG draw ledgers diverged")
    if result.total_sanitize_checks == 0:
        failures.append("epoch-consistency checker never ran")
    if failures:
        print("SANITIZE FAIL: " + "; ".join(failures))
        return 1
    print("SANITIZE OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
