"""Fig. 3: histogram of p-state transition latencies (Section VI-A).

Runs the modified FTaLaT between 1.2 and 1.3 GHz in the four request-
timing variants of the figure (random, instant-after-change, 400 us
after, ~500 us after) plus the parallel two-core variant that shows
same-socket simultaneity and cross-socket independence.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.ftalat import FtalatProbe, TransitionMode, TransitionResult
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, us

# "In the order of 500 us": the probe times its delay from *detection*,
# which lags the hardware change by up to one 20 us verification window
# (plus sleep overshoot). 475 us after detection is therefore ~500 us —
# one full grant quantum — after the actual transition, so the request
# races the next opportunity and the latencies split into the paper's
# two classes (immediate vs over 500 us).
NEAR_QUANTUM_DELAY_NS = us(475)


@dataclass(frozen=True)
class Fig3Result:
    random: TransitionResult
    instant: TransitionResult
    after_400us: TransitionResult
    near_500us: TransitionResult

    @property
    def variants(self) -> dict[str, TransitionResult]:
        return {
            "random": self.random,
            "instant": self.instant,
            "400us delay": self.after_400us,
            "~500us delay": self.near_500us,
        }


def run_fig3(seed: int = 41, n_samples: int = 1000,
             f_a_hz: float = ghz(1.2), f_b_hz: float = ghz(1.3)) -> Fig3Result:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    probe = FtalatProbe(sim, node)
    return Fig3Result(
        random=probe.measure(0, f_a_hz, f_b_hz, TransitionMode.RANDOM,
                             n_samples=n_samples),
        instant=probe.measure(0, f_a_hz, f_b_hz, TransitionMode.INSTANT,
                              n_samples=n_samples),
        after_400us=probe.measure(0, f_a_hz, f_b_hz,
                                  TransitionMode.FIXED_DELAY,
                                  n_samples=n_samples,
                                  fixed_delay_ns=us(400)),
        near_500us=probe.measure(0, f_a_hz, f_b_hz,
                                 TransitionMode.FIXED_DELAY,
                                 n_samples=n_samples,
                                 fixed_delay_ns=NEAR_QUANTUM_DELAY_NS),
    )


def run_parallel_check(seed: int = 43, n_samples: int = 50
                       ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Same-socket and cross-socket parallel transitions.

    Returns (same_a, same_b, cross_a, cross_b) detection times in ns.
    """
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    probe = FtalatProbe(sim, node)
    same_a, same_b = probe.measure_parallel(0, 1, ghz(1.2), ghz(1.3),
                                            n_samples=n_samples)
    cross_a, cross_b = probe.measure_parallel(
        2, node.spec.cpu.n_cores + 2, ghz(1.2), ghz(1.3),
        n_samples=n_samples)
    return same_a, same_b, cross_a, cross_b


def render_fig3(result: Fig3Result, bin_us: float = 50.0) -> str:
    from repro.analysis.plotting import ascii_histogram

    rows = []
    for name, res in result.variants.items():
        counts, edges = res.histogram(bin_us=bin_us)
        hist = " ".join(f"{int(e)}us:{c}" for e, c in
                        zip(edges[:-1], counts) if c > 0)
        rows.append([name, f"{res.min_us:.0f}", f"{res.median_us:.0f}",
                     f"{res.max_us:.0f}", hist])
    blocks = [render_table(
        headers=["variant", "min [us]", "median [us]", "max [us]",
                 f"histogram ({bin_us:.0f} us bins)"],
        rows=rows,
        title="Fig. 3: frequency transition latencies 1.2 <-> 1.3 GHz")]
    for name, res in result.variants.items():
        blocks.append(ascii_histogram(res.latencies_us, bin_width=bin_us,
                                      label=f"[{name}] latency (us)"))
    return "\n\n".join(blocks)
