"""Fig. 4: the presumed p-state grant mechanism, reconstructed from data.

Fig. 4 is the paper's *inference*: requests wait for periodic grant
opportunities driven by external logic (the PCU). This module performs
that inference programmatically — estimating the grant period and the
switching-time floor purely from FTaLaT measurements, the way the
authors reasoned from Fig. 3 — and checks the estimates against the
mechanism's actual parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.simulator import Simulator
from repro.instruments.ftalat import FtalatProbe, TransitionMode
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, to_us


@dataclass(frozen=True)
class MechanismEstimate:
    """What an experimenter can infer about Fig. 4 from latency data."""

    quantum_estimate_us: float        # from the random-mode latency span
    switch_floor_us: float            # minimum observed latency
    same_socket_synchronous: bool
    cross_socket_independent: bool
    true_quantum_us: float
    true_switch_us: float

    @property
    def quantum_error(self) -> float:
        return abs(self.quantum_estimate_us - self.true_quantum_us) \
            / self.true_quantum_us


def estimate_mechanism(seed: int = 97, n_samples: int = 400,
                       n_parallel: int = 30) -> MechanismEstimate:
    """Reconstruct the Fig. 4 mechanism from measurements alone."""
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    probe = FtalatProbe(sim, node)

    # Random arrivals: latency = U(0, quantum) + floor, so the span of
    # the distribution estimates the grant period and the minimum the
    # switching/verification floor.
    res = probe.measure(0, ghz(1.2), ghz(1.3), TransitionMode.RANDOM,
                        n_samples=n_samples)
    quantum_est = res.max_us - res.min_us
    floor = res.min_us

    # Parallel transitions: same socket synchronous, cross socket not.
    same_a, same_b = probe.measure_parallel(0, 1, ghz(1.2), ghz(1.3),
                                            n_samples=n_parallel)
    cross_a, cross_b = probe.measure_parallel(2, 14, ghz(1.2), ghz(1.3),
                                              n_samples=n_parallel)
    window_us = to_us(probe.poll_window_ns)
    same_sync = float(np.median(np.abs(same_a - same_b))) <= window_us * 1000
    cross_indep = float(np.median(np.abs(cross_a - cross_b))) \
        > window_us * 1000

    spec = node.spec.cpu
    return MechanismEstimate(
        quantum_estimate_us=quantum_est,
        switch_floor_us=floor,
        same_socket_synchronous=same_sync,
        cross_socket_independent=cross_indep,
        true_quantum_us=to_us(spec.pcu_quantum_ns),
        true_switch_us=to_us(spec.pstate_switch_time_ns),
    )


def render_fig4(est: MechanismEstimate) -> str:
    lines = [
        "Fig. 4: presumed p-state change mechanism (reconstructed)",
        f"  inferred grant period : {est.quantum_estimate_us:6.0f} us "
        f"(actual {est.true_quantum_us:.0f} us, "
        f"error {est.quantum_error * 100:.0f} %)",
        f"  latency floor         : {est.switch_floor_us:6.0f} us "
        "(switching time + verification window)",
        f"  same-socket cores change together   : "
        f"{est.same_socket_synchronous}",
        f"  cross-socket cores change separately: "
        f"{est.cross_socket_independent}",
        "  => change requests wait for periodic opportunities in external",
        "     logic, probably within the PCU (paper Section VI-A).",
    ]
    return "\n".join(lines)
