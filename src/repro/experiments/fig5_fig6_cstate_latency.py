"""Figs. 5 and 6: idle transition latencies for C3 and C6 scenarios.

Sweeps the wake-latency probe over the p-state range for the three
scenarios (local, remote-active, remote-idle/package) on the Haswell
node and, as the figures' grey reference curves, on the Sandy Bridge-EP
node. Also reports the ACPI-table claims the measurements undercut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.series import Series, SeriesBundle
from repro.analysis.tables import render_table
from repro.cstates.latency import WakeScenario
from repro.cstates.states import CState
from repro.engine.simulator import Simulator
from repro.instruments.cstate_probe import CStateProbe
from repro.specs.node import (
    HASWELL_TEST_NODE,
    SANDY_BRIDGE_TEST_NODE,
    NodeSpec,
)
from repro.system.node import build_node


@dataclass(frozen=True)
class CStateFigureResult:
    state: CState
    bundles: dict[str, SeriesBundle]      # scenario -> per-arch series
    acpi_claim_us: dict[str, float]       # arch -> claimed latency


def _sweep(node_spec: NodeSpec, state: CState, scenario: WakeScenario,
           seed: int, n_samples: int,
           grid_hz: tuple[float, ...]) -> Series:
    """Sweep over ``grid_hz``, snapping to the arch's nearest p-state so
    the curves of different architectures share an x-axis."""
    sim = Simulator(seed=seed)
    node = build_node(sim, node_spec)
    probe = CStateProbe(sim, node)
    medians = []
    for f in grid_hz:
        snapped = node_spec.cpu.nearest_pstate(f)
        m = probe.measure(state, scenario, snapped, n_samples=n_samples)
        medians.append(m.median_us)
    return Series(label=node_spec.cpu.microarch.name,
                  x=np.array(grid_hz) / 1e9,
                  y=np.array(medians))


def run_cstate_figure(
    state: CState,
    seed: int = 51,
    n_samples: int = 20,
    include_sandybridge: bool = True,
) -> CStateFigureResult:
    """``state`` selects the figure: C3 -> Fig. 5, C6 -> Fig. 6."""
    grid = HASWELL_TEST_NODE.cpu.pstates_hz
    bundles: dict[str, SeriesBundle] = {}
    for scenario in WakeScenario:
        bundle = SeriesBundle(
            title=f"{state.name} wake latency, {scenario.value}",
            x_label="core frequency [GHz]",
            y_label="wake latency [us]",
        )
        bundle.add(_sweep(HASWELL_TEST_NODE, state, scenario, seed,
                          n_samples, grid))
        if include_sandybridge:
            bundle.add(_sweep(SANDY_BRIDGE_TEST_NODE, state, scenario,
                              seed + 1, n_samples, grid))
        bundles[scenario.value] = bundle

    claims = {"Haswell-EP": (HASWELL_TEST_NODE.cpu.cstate_latency.acpi_c3_us
                             if state is CState.C3
                             else HASWELL_TEST_NODE.cpu.cstate_latency.acpi_c6_us)}
    if include_sandybridge:
        lat = SANDY_BRIDGE_TEST_NODE.cpu.cstate_latency
        claims["Sandy Bridge-EP"] = (lat.acpi_c3_us if state is CState.C3
                                     else lat.acpi_c6_us)
    return CStateFigureResult(state=state, bundles=bundles,
                              acpi_claim_us=claims)


def render_cstate_figure(result: CStateFigureResult) -> str:
    from repro.analysis.plotting import ascii_chart

    blocks = []
    fig_no = "5" if result.state is CState.C3 else "6"
    for scenario, bundle in result.bundles.items():
        rows = []
        for series in bundle.series:
            rows.append([series.label] +
                        [f"{v:.1f}" for v in series.y])
        freqs = [f"{x:.2f}" for x in bundle.series[0].x]
        blocks.append(render_table(
            headers=["arch \\ f [GHz]"] + freqs,
            rows=rows,
            title=f"Fig. {fig_no} ({scenario}): "
                  f"{result.state.name} wake latency [us]"))
        blocks.append(ascii_chart(bundle))
    claims = ", ".join(f"{k}: {v:.0f} us" for k, v in
                       result.acpi_claim_us.items())
    blocks.append(f"ACPI table claims -- {claims} "
                  "(measured latencies undercut these)")
    return "\n\n".join(blocks)
