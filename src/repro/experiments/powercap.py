"""Power-cap sweep: performance under a hardware-enforced power bound.

The paper cites Rountree et al. [24]: under a package power bound, the
"different power characteristics of the processors can lead to
performance imbalances" (Section V-B). Our test node carries the
measured asymmetry (socket 0 runs at higher voltage), so sweeping the
RAPL PL1 limit through the MSR interface reproduces the effect: the same
cap yields different sustained frequencies — and therefore different
application performance — on the two packages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.perfctr import LikwidSampler
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.msr import MSR, MsrSpace, PL1_ENABLE, POWER_UNIT_W
from repro.system.node import build_node
from repro.units import seconds
from repro.workloads.firestarter import firestarter


@dataclass(frozen=True)
class PowerCapPoint:
    cap_w: float
    freq_hz: tuple[float, float]        # per socket
    gips: tuple[float, float]
    pkg_w: tuple[float, float]

    @property
    def frequency_imbalance(self) -> float:
        """Relative frequency gap between the two packages."""
        lo, hi = sorted(self.freq_hz)
        return 1.0 - lo / hi if hi else 0.0


def run_powercap_sweep(
    caps_w: tuple[float, ...] = (120.0, 100.0, 80.0, 60.0),
    seed: int = 121,
    measure_s: float = 4.0,
) -> list[PowerCapPoint]:
    sim = Simulator(seed=seed)
    node = build_node(sim, HASWELL_TEST_NODE)
    msr = MsrSpace(node)
    node.run_workload([c.core_id for c in node.all_cores],
                      firestarter(ht=True))
    monitor = [0, node.spec.cpu.n_cores]

    points = []
    for cap in caps_w:
        raw = int(cap / POWER_UNIT_W) | PL1_ENABLE
        msr.write(0, MSR.MSR_PKG_POWER_LIMIT, raw)
        msr.write(node.spec.cpu.n_cores, MSR.MSR_PKG_POWER_LIMIT, raw)
        sim.run_for(seconds(1))           # settle to the new equilibrium
        sampler = LikwidSampler(sim, node, core_ids=monitor,
                                period_ns=seconds(measure_s / 4))
        sampler.start()
        sim.run_for(seconds(measure_s))
        sampler.stop()
        med = [sampler.median_metrics(cid) for cid in monitor]
        points.append(PowerCapPoint(
            cap_w=cap,
            freq_hz=(med[0]["core_freq_hz"], med[1]["core_freq_hz"]),
            gips=(med[0]["ips"] / 1e9, med[1]["ips"] / 1e9),
            pkg_w=(med[0]["pkg_power_w"], med[1]["pkg_power_w"]),
        ))
    return points


def render_powercap(points: list[PowerCapPoint]) -> str:
    rows = [[f"{p.cap_w:.0f}",
             f"{p.freq_hz[0] / 1e9:.2f}", f"{p.freq_hz[1] / 1e9:.2f}",
             f"{p.gips[0]:.2f}", f"{p.gips[1]:.2f}",
             f"{p.pkg_w[0]:.1f}", f"{p.pkg_w[1]:.1f}",
             f"{p.frequency_imbalance * 100:.1f} %"]
            for p in points]
    return render_table(
        headers=["cap [W]", "f P0 [GHz]", "f P1 [GHz]", "GIPS P0",
                 "GIPS P1", "pkg P0 [W]", "pkg P1 [W]", "imbalance"],
        rows=rows,
        title="Power-cap sweep under FIRESTARTER (hardware-enforced "
              "bound, per-socket asymmetry)")
