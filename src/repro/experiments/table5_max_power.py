"""Table V: maximizing power consumption (Section VIII).

FIRESTARTER 1.2 vs LINPACK (N = 80,000) vs mprime 28.5 across frequency
settings {2.5 GHz, turbo} and EPB {power, balanced, performance},
Hyper-Threading off. For each cell the LMG450 trace's highest 1-minute
window is extracted (favoring the less-constant LINPACK/mprime, as the
paper notes) along with the measured core frequency over that window.

Reproduced shape: LINPACK draws ~12 W less at the wall and runs at the
lowest frequency (TDP-throttled hardest); FIRESTARTER and mprime are on
par in power, with mprime at higher, more variable frequency; EPB/turbo
settings barely move the result — except mprime at the 2.5 GHz setting,
where EET (power/balanced) trims below nominal and EPB=performance
activates turbo even at base frequency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import render_table
from repro.engine.simulator import Simulator
from repro.instruments.lmg450 import Lmg450
from repro.instruments.perfctr import LikwidSampler
from repro.pcu.epb import Epb
from repro.specs.node import HASWELL_TEST_NODE
from repro.system.node import build_node
from repro.units import ghz, seconds
from repro.workloads.base import Workload
from repro.workloads.firestarter import firestarter
from repro.workloads.linpack import linpack
from repro.workloads.mprime import mprime


@dataclass(frozen=True)
class Table5Cell:
    workload: str
    setting_hz: float | None
    epb: Epb
    max_window_power_w: float
    mean_core_freq_hz: float


@dataclass(frozen=True)
class Table5Result:
    cells: list[Table5Cell]
    window_s: float

    def cell(self, workload: str, setting_hz: float | None,
             epb: Epb) -> Table5Cell:
        for c in self.cells:
            same_setting = (
                (c.setting_hz is None and setting_hz is None)
                or (c.setting_hz is not None and setting_hz is not None
                    and abs(c.setting_hz - setting_hz) < 1e6))
            if c.workload == workload and same_setting and c.epb is epb:
                return c
        raise KeyError((workload, setting_hz, epb))


def _workloads() -> list[tuple[str, Workload]]:
    return [
        ("FIRESTARTER", firestarter(ht=False)),
        ("LINPACK", linpack()),
        ("mprime", mprime()),
    ]


def run_table5(
    seed: int = 71,
    measure_s: float = 75.0,
    window_s: float = 60.0,
    settle_s: float = 2.0,
    epbs: tuple[Epb, ...] = (Epb.POWERSAVE, Epb.BALANCED, Epb.PERFORMANCE),
    settings: tuple[float | None, ...] = (ghz(2.5), None),
) -> Table5Result:
    cells = []
    for wl_name, workload in _workloads():
        for setting in settings:
            for epb in epbs:
                sim = Simulator(seed=seed)
                node = build_node(sim, HASWELL_TEST_NODE, epb=epb)
                all_ids = [c.core_id for c in node.all_cores]
                node.run_workload(all_ids, workload)
                node.set_pstate(None, setting)
                sim.run_for(seconds(settle_s))

                meter = Lmg450(sim, node)
                meter.start()
                sampler = LikwidSampler(sim, node,
                                        core_ids=[0, node.spec.cpu.n_cores],
                                        period_ns=seconds(1))
                sampler.start()
                sim.run_for(seconds(measure_s))
                sampler.stop()
                meter.stop()

                power = meter.max_window_average(window_s=window_s) \
                    if measure_s >= window_s else float(
                        np.mean(meter.watts))
                freq = np.mean([
                    sampler.median_metrics(cid)["core_freq_hz"]
                    for cid in (0, node.spec.cpu.n_cores)])
                cells.append(Table5Cell(
                    workload=wl_name, setting_hz=setting, epb=epb,
                    max_window_power_w=power,
                    mean_core_freq_hz=float(freq)))
    return Table5Result(cells=cells, window_s=window_s)


_EPB_LABEL = {Epb.POWERSAVE: "power", Epb.BALANCED: "bal",
              Epb.PERFORMANCE: "perf"}


def render_table5(result: Table5Result) -> str:
    settings = []
    for c in result.cells:
        key = c.setting_hz
        if key not in settings:
            settings.append(key)
    epbs = []
    for c in result.cells:
        if c.epb not in epbs:
            epbs.append(c.epb)
    headers = ["Selected frequency"] + [
        ("Turbo" if s is None else f"{s / 1e6:.0f} MHz")
        + f"/{_EPB_LABEL[e]}"
        for s in settings for e in epbs]
    workloads = []
    for c in result.cells:
        if c.workload not in workloads:
            workloads.append(c.workload)

    power_rows = []
    freq_rows = []
    for wl in workloads:
        p_row = [wl]
        f_row = [wl]
        for s in settings:
            for e in epbs:
                cell = result.cell(wl, s, e)
                p_row.append(f"{cell.max_window_power_w:.1f}")
                f_row.append(f"{cell.mean_core_freq_hz / 1e9:.2f}")
        power_rows.append(p_row)
        freq_rows.append(f_row)

    return "\n\n".join([
        render_table(headers, power_rows,
                     title=f"Table V (power in W, max {result.window_s:.0f} s "
                           "window, HT off)"),
        render_table(headers, freq_rows,
                     title="Table V (measured core frequency in GHz)"),
    ])
