"""Table I: Sandy Bridge-EP vs Haswell-EP microarchitecture comparison.

Static, but not free of content: the derived rows (FLOPS/cycle, L1D/L2
bandwidth, peak DRAM and QPI bandwidth) are *computed* from the primitive
spec fields, so the benchmark verifies the paper's arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import render_table
from repro.specs.microarch import (
    MicroarchSpec,
    SANDY_BRIDGE_EP,
    HASWELL_EP,
)

# The paper's Table I values for the derived rows, used as assertions.
PAPER_FLOPS_PER_CYCLE = {"sandybridge-ep": 8, "haswell-ep": 16}
PAPER_DRAM_PEAK_GBS = {"sandybridge-ep": 51.2, "haswell-ep": 68.2}
PAPER_QPI_GBS = {"sandybridge-ep": 32.0, "haswell-ep": 38.4}


@dataclass(frozen=True)
class Table1Result:
    rows: list[tuple[str, str, str]]       # (quantity, SNB value, HSW value)
    specs: tuple[MicroarchSpec, MicroarchSpec]


def run_table1() -> Table1Result:
    snb, hsw = SANDY_BRIDGE_EP, HASWELL_EP
    row_snb = snb.table_row()
    row_hsw = hsw.table_row()
    rows = [(key, row_snb[key], row_hsw[key]) for key in row_snb]
    return Table1Result(rows=rows, specs=(snb, hsw))


def render_table1(result: Table1Result | None = None) -> str:
    result = result if result is not None else run_table1()
    return render_table(
        headers=["Microarchitecture", "Sandy Bridge-EP", "Haswell-EP"],
        rows=[[q, a, b] for q, a, b in result.rows],
        title="Table I: comparison of Sandy Bridge and Haswell microarchitecture",
    )
